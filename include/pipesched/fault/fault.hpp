#pragma once

// Process-wide fault-injection registry: named failure points ("sites")
// scattered through the serving stack (socket I/O, HTTP parse, scheduler
// admission, cache access, portfolio members) that can be armed to fail,
// stall, or both, under probability/count/latency triggers.
//
// Disarmed cost is one relaxed atomic load and a predictable branch per
// site — the same pattern as obs::metricsEnabled() — so the hooks stay in
// production builds. Arming happens via `--fault-spec` on serve/batch or
// the PIPESCHED_FAULT_SPEC environment variable.
//
// Spec grammar (clauses separated by ';', actions by ','):
//
//   spec    := clause (';' clause)*
//   clause  := site ['=' action (',' action)*]   bare site = always fail
//   action  := 'p' ':' FLOAT     probability gate in [0,1] (default 1)
//            | 'count' ':' N     fire at most N times (default unlimited)
//            | 'after' ':' N     skip the first N evaluations (default 0)
//            | 'latency' ':' MS  sleep MS milliseconds when firing
//            | 'noerror'         latency-only: delay but do not fail
//
// A site ending in '*' is a prefix glob: `member.*=p:0.1` matches every
// portfolio member, `*=p:0.01` matches every registered site. Examples:
//
//   net.read=p:0.05
//   member.H3=count:2;sched.submit=p:0.5,latency:20
//   *=p:0.02,latency:5
//
// Probability draws use a deterministic splitmix64 stream seeded at arm
// time, so a given spec replays the same decision sequence run to run
// (modulo thread interleaving of the evaluation order).

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pipesched::fault {

/// Canonical site names. Call sites pass these so specs and docs agree;
/// dynamic sites (portfolio members) are spelled "member.<id>".
namespace sites {
inline constexpr std::string_view kNetRead = "net.read";
inline constexpr std::string_view kNetWrite = "net.write";
inline constexpr std::string_view kNetAccept = "net.accept";
inline constexpr std::string_view kHttpParse = "http.parse";
inline constexpr std::string_view kSchedSubmit = "sched.submit";
inline constexpr std::string_view kCacheGet = "cache.get";
inline constexpr std::string_view kCachePut = "cache.put";
inline constexpr std::string_view kMemberPrefix = "member.";
}  // namespace sites

/// One parsed spec clause.
struct FaultRule {
  std::string site;                 ///< exact name, or prefix glob ending in '*'
  double probability = 1.0;         ///< chance each eligible evaluation fires
  std::uint64_t maxCount = 0;       ///< fire at most this many times; 0 = unlimited
  std::uint64_t after = 0;          ///< skip the first N evaluations of this rule
  double latencyMs = 0.0;           ///< injected delay when firing
  bool fail = true;                 ///< false = latency-only ('noerror')
};

/// Parses the spec grammar above. Throws ModelError naming the offending
/// clause on malformed input. An empty spec yields an empty rule list.
[[nodiscard]] std::vector<FaultRule> parseFaultSpec(const std::string& spec);

/// Parses `spec` and arms the process-wide registry (replacing any prior
/// arming). Evaluation counters start at zero; the probability stream is
/// seeded from `seed`.
void arm(const std::string& spec, std::uint64_t seed = 0x9e3779b97f4a7c15ULL);
void arm(std::vector<FaultRule> rules, std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

/// Disarms the registry; evaluation reverts to the one-branch fast path.
void disarm() noexcept;

namespace detail {
extern std::atomic<bool> g_armed;
/// Slow path: matches `site` against the armed rules, applies latency,
/// bumps fault.* counters. Returns true when the site should fail.
bool evaluate(std::string_view site) noexcept;
}  // namespace detail

/// True when a fault spec is armed.
[[nodiscard]] inline bool armed() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// The per-site hook: returns true when the armed spec says this site
/// should fail now. Latency-only rules sleep here and return false.
/// Disarmed, this is one relaxed load and a not-taken branch.
[[nodiscard]] inline bool injected(std::string_view site) noexcept {
  if (!armed()) return false;
  return detail::evaluate(site);
}

/// Per-rule observability for tests and the chaos harness.
struct RuleStats {
  std::string site;            ///< rule's site pattern as written in the spec
  std::uint64_t evaluations = 0;  ///< times a call site matched this rule
  std::uint64_t injected = 0;     ///< times the rule fired (failed or stalled)
};

/// Snapshot of per-rule counters, in spec order. Empty when disarmed.
[[nodiscard]] std::vector<RuleStats> stats();

/// Arms in the constructor, disarms in the destructor. Test/CLI scoping so
/// in-process reentry (runCli in tests) never leaks an armed spec.
class ScopedFaultSpec {
 public:
  explicit ScopedFaultSpec(const std::string& spec,
                           std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    arm(spec, seed);
  }
  ~ScopedFaultSpec() { disarm(); }
  ScopedFaultSpec(const ScopedFaultSpec&) = delete;
  ScopedFaultSpec& operator=(const ScopedFaultSpec&) = delete;
};

}  // namespace pipesched::fault
