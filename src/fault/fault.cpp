#include "pipesched/fault/fault.hpp"

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "pipesched/core/types.hpp"
#include "pipesched/obs/metrics.hpp"

namespace pipesched::fault {
namespace {

/// splitmix64: the deterministic probability stream. Good enough mixing for
/// fault dice, stateless apart from one counter word.
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One armed rule plus its live counters. Counters are plain integers
/// guarded by g_mutex — the armed path is chaos-testing territory where a
/// mutex hop is noise next to the injected latencies themselves.
struct ArmedRule {
  FaultRule rule;
  std::uint64_t evaluations = 0;
  std::uint64_t fired = 0;
};

struct State {
  std::vector<ArmedRule> rules;
  std::uint64_t rng = 0;
};

std::mutex g_mutex;
State* g_state = nullptr;  // owned; non-null exactly while armed

bool matches(const std::string& pattern, std::string_view site) noexcept {
  if (!pattern.empty() && pattern.back() == '*') {
    const std::string_view prefix(pattern.data(), pattern.size() - 1);
    return site.substr(0, prefix.size()) == prefix;
  }
  return site == pattern;
}

[[noreturn]] void badClause(const std::string& clause, const std::string& why) {
  throw ModelError("fault-spec: bad clause \"" + clause + "\": " + why);
}

FaultRule parseClause(const std::string& clause) {
  const auto eq = clause.find('=');
  if (eq == 0) badClause(clause, "expected site[=action[,action...]]");
  FaultRule rule;
  rule.site = clause.substr(0, eq == std::string::npos ? clause.size() : eq);
  if (rule.site.find('*') != std::string::npos && rule.site.find('*') != rule.site.size() - 1) {
    badClause(clause, "'*' is only allowed as a trailing glob");
  }
  // A bare site is shorthand for "always fail": `member.H3` == `member.H3=p:1`.
  if (eq == std::string::npos) return rule;
  std::string rest = clause.substr(eq + 1);
  if (rest.empty()) badClause(clause, "empty action list");
  std::size_t pos = 0;
  while (pos <= rest.size()) {
    const auto comma = rest.find(',', pos);
    const std::string action =
        rest.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? rest.size() + 1 : comma + 1;
    if (action.empty()) badClause(clause, "empty action");
    if (action == "noerror") {
      rule.fail = false;
      continue;
    }
    const auto colon = action.find(':');
    if (colon == std::string::npos) badClause(clause, "unknown action \"" + action + "\"");
    const std::string key = action.substr(0, colon);
    const std::string value = action.substr(colon + 1);
    std::size_t used = 0;
    try {
      if (key == "p") {
        rule.probability = std::stod(value, &used);
        if (used != value.size() || rule.probability < 0.0 || rule.probability > 1.0) {
          badClause(clause, "p wants a probability in [0,1], got \"" + value + "\"");
        }
      } else if (key == "count") {
        rule.maxCount = std::stoull(value, &used);
        if (used != value.size() || rule.maxCount == 0) {
          badClause(clause, "count wants a positive integer, got \"" + value + "\"");
        }
      } else if (key == "after") {
        rule.after = std::stoull(value, &used);
        if (used != value.size()) badClause(clause, "after wants an integer, got \"" + value + "\"");
      } else if (key == "latency") {
        rule.latencyMs = std::stod(value, &used);
        if (used != value.size() || rule.latencyMs < 0.0) {
          badClause(clause, "latency wants milliseconds >= 0, got \"" + value + "\"");
        }
      } else {
        badClause(clause, "unknown action \"" + action + "\"");
      }
    } catch (const ModelError&) {
      throw;
    } catch (const std::exception&) {
      badClause(clause, "malformed number \"" + value + "\"");
    }
  }
  return rule;
}

}  // namespace

std::vector<FaultRule> parseFaultSpec(const std::string& spec) {
  std::vector<FaultRule> rules;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto semi = spec.find(';', pos);
    std::string clause =
        spec.substr(pos, semi == std::string::npos ? std::string::npos : semi - pos);
    pos = semi == std::string::npos ? spec.size() + 1 : semi + 1;
    // Trim surrounding whitespace so shell-quoted specs with spaces parse.
    const auto begin = clause.find_first_not_of(" \t");
    const auto end = clause.find_last_not_of(" \t");
    if (begin == std::string::npos) continue;  // blank / "a=p:1;;b" / trailing ';'
    clause = clause.substr(begin, end - begin + 1);
    rules.push_back(parseClause(clause));
  }
  return rules;
}

void arm(const std::string& spec, std::uint64_t seed) { arm(parseFaultSpec(spec), seed); }

void arm(std::vector<FaultRule> rules, std::uint64_t seed) {
  auto state = std::make_unique<State>();
  state->rng = seed;
  state->rules.reserve(rules.size());
  for (auto& rule : rules) state->rules.push_back(ArmedRule{std::move(rule), 0, 0});
  const std::lock_guard<std::mutex> lock(g_mutex);
  delete g_state;
  g_state = state.release();
  detail::g_armed.store(!g_state->rules.empty(), std::memory_order_relaxed);
}

void disarm() noexcept {
  const std::lock_guard<std::mutex> lock(g_mutex);
  detail::g_armed.store(false, std::memory_order_relaxed);
  delete g_state;
  g_state = nullptr;
}

std::vector<RuleStats> stats() {
  std::vector<RuleStats> out;
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (g_state == nullptr) return out;
  out.reserve(g_state->rules.size());
  for (const auto& armed : g_state->rules) {
    out.push_back(RuleStats{armed.rule.site, armed.evaluations, armed.fired});
  }
  return out;
}

namespace detail {

std::atomic<bool> g_armed{false};

bool evaluate(std::string_view site) noexcept {
  bool fail = false;
  double latencyMs = 0.0;
  {
    const std::lock_guard<std::mutex> lock(g_mutex);
    if (g_state == nullptr) return false;  // raced a disarm; benign
    for (auto& armed : g_state->rules) {
      if (!matches(armed.rule.site, site)) continue;
      const std::uint64_t ordinal = armed.evaluations++;
      if (ordinal < armed.rule.after) continue;
      if (armed.rule.maxCount != 0 && armed.fired >= armed.rule.maxCount) continue;
      if (armed.rule.probability < 1.0) {
        // Top 53 bits -> uniform double in [0,1).
        const double draw =
            static_cast<double>(splitmix64(g_state->rng) >> 11) * 0x1.0p-53;
        if (draw >= armed.rule.probability) continue;
      }
      ++armed.fired;
      fail = fail || armed.rule.fail;
      if (armed.rule.latencyMs > latencyMs) latencyMs = armed.rule.latencyMs;
    }
  }
  if (fail || latencyMs > 0.0) {
    if (obs::metricsEnabled()) {
      obs::registry().counter(obs::names::kFaultInjected).add();
      obs::registry().counter("fault.site." + std::string(site)).add();
    }
  }
  if (latencyMs > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(latencyMs));
  }
  return fail;
}

}  // namespace detail
}  // namespace pipesched::fault
