#include "pipesched/net/server.hpp"

#include <utility>

#include "pipesched/obs/metrics.hpp"

namespace pipesched::net {

namespace {

std::uint64_t elapsedNanos(std::chrono::steady_clock::time_point start) {
  const auto delta = std::chrono::steady_clock::now() - start;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(delta).count();
  return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
}

}  // namespace

/// Thread-safe mailbox between Done callbacks and the event loop. Shared via
/// shared_ptr so a worker finishing after run() returned hits the `closed`
/// flag instead of a dangling server.
struct HttpServer::CompletionQueue {
  WakePipe wake;
  std::mutex mutex;
  std::vector<Completion> items;
  bool closed = false;

  void push(Completion completion) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (closed) return;
      items.push_back(std::move(completion));
    }
    wake.notify();
  }

  std::vector<Completion> take() {
    std::lock_guard<std::mutex> lock(mutex);
    return std::exchange(items, {});
  }

  void close() {
    std::lock_guard<std::mutex> lock(mutex);
    closed = true;
    items.clear();
  }
};

HttpServer::HttpServer(HttpServerConfig config)
    : config_(std::move(config)), completions_(std::make_shared<CompletionQueue>()) {}

HttpServer::~HttpServer() { completions_->close(); }

void HttpServer::handle(std::string method, std::string path, Handler handler) {
  Route route;
  route.method = std::move(method);
  route.path = std::move(path);
  route.endpoint =
      route.path.size() > 1 && route.path.front() == '/' ? route.path.substr(1) : route.path;
  route.handler = std::move(handler);
  routes_.push_back(std::move(route));
}

void HttpServer::bind() {
  if (listener_.open()) return;
  listener_.listen(config_.endpoint, config_.backlog);
}

Endpoint HttpServer::local() const { return listener_.local(); }

void HttpServer::requestStop() noexcept {
  stopRequested_.store(true);
  completions_->wake.notify();
}

ServerStats HttpServer::stats() const {
  ServerStats s;
  s.accepted = accepted_.load();
  s.closed = closed_.load();
  s.errored = errored_.load();
  s.requests = requests_.load();
  s.bytesRead = bytesRead_.load();
  s.bytesWritten = bytesWritten_.load();
  s.shed = shed_.load();
  s.active = accepted_.load() - closed_.load() - errored_.load();
  s.requestTimeouts = requestTimeouts_.load();
  s.idleClosed = idleClosed_.load();
  return s;
}

void HttpServer::noteShed() noexcept {
  shed_.fetch_add(1);
  if (obs::metricsEnabled()) obs::registry().counter(obs::names::kNetShed).add(1);
}

void HttpServer::queueDirect(Connection& conn, int status, const std::string& body,
                             bool keepAlive) {
  conn.outbox.push_back(renderHttpResponse(status, "text/plain", body, keepAlive));
  if (!keepAlive) conn.closeAfterFlush = true;
}

void HttpServer::acceptPending() {
  while (auto socket = listener_.accept()) {
    accepted_.fetch_add(1);
    if (obs::metricsEnabled()) {
      obs::registry().counter(obs::names::kNetAccepted).add(1);
    }
    if (connections_.size() >= config_.maxConnections) {
      // Over the connection cap: best-effort 503 on the fresh socket, then
      // drop it. One non-blocking write — never stall the loop for a peer
      // we are rejecting.
      const std::string reply = renderHttpResponse(
          503, "text/plain", "connection limit reached\n", false);
      (void)socket->write(reply.data(), reply.size());
      errored_.fetch_add(1);
      if (obs::metricsEnabled()) {
        obs::registry().counter(obs::names::kNetErrored).add(1);
      }
      continue;
    }
    Connection conn;
    conn.socket = std::move(*socket);
    conn.parser = HttpParser(config_.maxBodyBytes);
    conn.lastActivity = std::chrono::steady_clock::now();
    connections_.emplace(nextConnectionId_++, std::move(conn));
  }
  if (obs::metricsEnabled()) {
    obs::registry().gauge(obs::names::kNetActive).set(
        static_cast<std::int64_t>(connections_.size()));
  }
}

void HttpServer::sweepTimeouts() {
  if (config_.requestTimeoutMs <= 0 && config_.idleTimeoutMs <= 0) return;
  if (connections_.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  // Collect first: queueDirect/destroy mutate the map and the poll set.
  std::vector<std::uint64_t> stalled;
  std::vector<std::uint64_t> idle;
  for (auto& [id, conn] : connections_) {
    // A connection with a dispatched request or queued bytes is the
    // handler's/flusher's responsibility, not the sweep's.
    if (conn.awaitingResponse || !conn.outbox.empty()) continue;
    const auto quiet = now - conn.lastActivity;
    if (config_.requestTimeoutMs > 0 && conn.parser.started() &&
        quiet >= std::chrono::milliseconds(config_.requestTimeoutMs)) {
      stalled.push_back(id);
    } else if (config_.idleTimeoutMs > 0 && !conn.parser.started() &&
               quiet >= std::chrono::milliseconds(config_.idleTimeoutMs)) {
      idle.push_back(id);
    }
  }
  for (const std::uint64_t id : stalled) {
    // Slowloris guard: answer 408 and close. The response flushes through
    // the normal outbox path on the next writable edge.
    Connection& conn = connections_.at(id);
    queueDirect(conn, 408, "request timeout\n", /*keepAlive=*/false);
    requestTimeouts_.fetch_add(1);
    if (obs::metricsEnabled()) {
      obs::registry().counter(obs::names::kNetRequestTimeouts).add(1);
    }
  }
  for (const std::uint64_t id : idle) {
    // Idle keep-alive: nothing in flight, nothing owed — close silently.
    idleClosed_.fetch_add(1);
    if (obs::metricsEnabled()) {
      obs::registry().counter(obs::names::kNetIdleClosed).add(1);
    }
    destroy(id, /*errored=*/false);
  }
}

void HttpServer::dispatch(std::uint64_t id, Connection& conn) {
  const HttpRequest& request = conn.parser.request();
  requests_.fetch_add(1);
  if (obs::metricsEnabled()) obs::registry().counter(obs::names::kNetRequests).add(1);

  const std::string path = request.path();
  const Route* route = nullptr;
  bool pathKnown = false;
  for (const Route& candidate : routes_) {
    if (candidate.path != path) continue;
    pathKnown = true;
    if (candidate.method == request.method) {
      route = &candidate;
      break;
    }
  }
  if (route == nullptr) {
    queueDirect(conn, pathKnown ? 405 : 404,
                pathKnown ? "method not allowed\n" : "no such endpoint\n",
                request.keepAlive);
    if (request.keepAlive) (void)conn.parser.reset();
    return;
  }

  // While draining, every response closes its connection so keep-alive peers
  // cannot hold the drain open indefinitely.
  const bool keepAlive = request.keepAlive && !draining_.load();
  conn.awaitingResponse = true;
  ++inflight_;
  auto called = std::make_shared<std::atomic<bool>>(false);
  Done done = [queue = completions_, id, endpoint = route->endpoint, keepAlive, called,
               start = std::chrono::steady_clock::now()](
                  int status, std::string contentType, std::string body) {
    if (called->exchange(true)) return;
    Completion completion;
    completion.connection = id;
    completion.response =
        renderHttpResponse(status, std::move(contentType), body, keepAlive);
    completion.close = !keepAlive;
    completion.endpoint = endpoint;
    completion.start = start;
    queue->push(std::move(completion));
  };
  route->handler(request, std::move(done));
}

void HttpServer::processParsed(std::uint64_t id, Connection& conn) {
  while (!conn.awaitingResponse && !conn.closeAfterFlush) {
    switch (conn.parser.status()) {
      case HttpParser::Status::kNeedMore:
        return;
      case HttpParser::Status::kError:
        queueDirect(conn, conn.parser.errorStatus(), conn.parser.error() + "\n", false);
        return;
      case HttpParser::Status::kComplete:
        dispatch(id, conn);
        // dispatch() either reset the parser (direct 404/405 answer — loop to
        // check for a pipelined follow-up) or left awaitingResponse set.
        break;
    }
  }
}

void HttpServer::applyCompletions() {
  for (Completion& completion : completions_->take()) {
    --inflight_;
    if (obs::metricsEnabled() && !completion.endpoint.empty()) {
      obs::endpointHistogram(completion.endpoint).record(elapsedNanos(completion.start));
    }
    auto it = connections_.find(completion.connection);
    if (it == connections_.end()) continue;  // peer vanished; drop the response
    Connection& conn = it->second;
    conn.outbox.push_back(std::move(completion.response));
    conn.awaitingResponse = false;
    // During a drain, close after every response — even ones dispatched
    // before the stop (their rendered header may still say keep-alive; a
    // server may close at will, and the drain must converge).
    if (completion.close || draining_.load()) {
      conn.closeAfterFlush = true;
    } else {
      (void)conn.parser.reset();
      processParsed(completion.connection, conn);
    }
  }
}

void HttpServer::readFrom(std::uint64_t id, Connection& conn) {
  char buffer[8192];
  for (;;) {
    const IoResult r = conn.socket.read(buffer, sizeof buffer);
    if (r.bytes > 0) {
      conn.lastActivity = std::chrono::steady_clock::now();
      bytesRead_.fetch_add(r.bytes);
      if (obs::metricsEnabled()) {
        obs::registry().counter(obs::names::kNetBytesRead).add(r.bytes);
      }
      (void)conn.parser.consume(buffer, r.bytes);
      continue;
    }
    if (r.wouldBlock) break;
    if (r.closed) {
      conn.peerClosed = true;
      break;
    }
    destroy(id, /*errored=*/true);
    return;
  }
  processParsed(id, conn);
}

bool HttpServer::flush(Connection& conn) {
  while (!conn.outbox.empty()) {
    const std::string& front = conn.outbox.front();
    const IoResult r = conn.socket.write(front.data() + conn.outboxOffset,
                                         front.size() - conn.outboxOffset);
    if (r.bytes > 0) {
      bytesWritten_.fetch_add(r.bytes);
      if (obs::metricsEnabled()) {
        obs::registry().counter(obs::names::kNetBytesWritten).add(r.bytes);
      }
      conn.outboxOffset += r.bytes;
      if (conn.outboxOffset == front.size()) {
        conn.outbox.pop_front();
        conn.outboxOffset = 0;
      }
      continue;
    }
    if (r.wouldBlock) return true;
    return false;  // write error: the connection is dead
  }
  return true;
}

void HttpServer::destroy(std::uint64_t id, bool errored) {
  connections_.erase(id);
  (errored ? errored_ : closed_).fetch_add(1);
  if (obs::metricsEnabled()) {
    obs::registry()
        .counter(errored ? obs::names::kNetErrored : obs::names::kNetClosed)
        .add(1);
    obs::registry().gauge(obs::names::kNetActive).set(
        static_cast<std::int64_t>(connections_.size()));
  }
}

void HttpServer::run() {
  bind();
  std::chrono::steady_clock::time_point drainDeadline{};

  for (;;) {
    if (stopRequested_.load() && !draining_.load()) {
      draining_.store(true);
      listener_.close();
      drainDeadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(config_.drainTimeoutMs);
      if (obs::metricsEnabled()) obs::registry().gauge(obs::names::kNetDraining).set(1);
    }

    poller_.clear();
    poller_.watch(completions_->wake.readFd(), /*read=*/true, /*write=*/false);
    if (listener_.open()) poller_.watch(listener_.fd(), /*read=*/true, /*write=*/false);
    for (const auto& [id, conn] : connections_) {
      poller_.watch(conn.socket.fd(), /*read=*/!conn.peerClosed,
                    /*write=*/!conn.outbox.empty());
    }

    const int timeout =
        draining_.load() ? 50 : config_.pollTimeoutMs;
    (void)poller_.wait(timeout);
    completions_->wake.drain();

    applyCompletions();
    if (listener_.open() && (poller_.events(listener_.fd()) & Poller::kReadable) != 0) {
      acceptPending();
    }

    // Snapshot ids first: readFrom/flush may erase entries mid-iteration.
    std::vector<std::uint64_t> ids;
    ids.reserve(connections_.size());
    for (const auto& [id, conn] : connections_) ids.push_back(id);
    for (const std::uint64_t id : ids) {
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      const unsigned events = poller_.events(it->second.socket.fd());
      if ((events & Poller::kReadable) != 0) readFrom(id, it->second);
      it = connections_.find(id);
      if (it == connections_.end()) continue;
      Connection& conn = it->second;
      if (!conn.outbox.empty() || (events & Poller::kWritable) != 0) {
        if (!flush(conn)) {
          destroy(id, /*errored=*/true);
          continue;
        }
      }
      if ((events & Poller::kError) != 0 && conn.outbox.empty() &&
          !conn.awaitingResponse) {
        destroy(id, /*errored=*/false);
        continue;
      }
      if (conn.outbox.empty() && !conn.awaitingResponse &&
          (conn.closeAfterFlush || conn.peerClosed)) {
        destroy(id, /*errored=*/false);
      }
    }

    // Idle/slowloris sweep rides the poll heartbeat: worst-case detection
    // latency is one pollTimeoutMs tick past the configured timeout.
    sweepTimeouts();

    if (draining_.load()) {
      bool outboxesEmpty = true;
      for (auto& [id, conn] : connections_) {
        if (!conn.outbox.empty()) outboxesEmpty = false;
      }
      const bool drained = inflight_ == 0 && outboxesEmpty;
      if (drained || std::chrono::steady_clock::now() >= drainDeadline) {
        break;
      }
    }
  }

  // Drain complete (or deadline hit): drop whatever connections remain.
  std::vector<std::uint64_t> ids;
  for (const auto& [id, conn] : connections_) ids.push_back(id);
  for (const std::uint64_t id : ids) destroy(id, /*errored=*/false);
  completions_->close();
}

}  // namespace pipesched::net
