#include "pipesched/net/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace pipesched::net {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw ModelError("net: " + what + ": " + std::strerror(errno));
}

sockaddr_in resolveIpv4(const Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) == 1) return addr;
  // Not a numeric address: one resolver round-trip (IPv4 only — the serving
  // tier binds loopback/any in practice; v6 can join when a deployment needs
  // it without touching any caller).
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(endpoint.host.c_str(), nullptr, &hints, &results);
  if (rc != 0 || results == nullptr) {
    throw ModelError("net: cannot resolve host '" + endpoint.host +
                     "': " + gai_strerror(rc));
  }
  addr.sin_addr = reinterpret_cast<sockaddr_in*>(results->ai_addr)->sin_addr;
  ::freeaddrinfo(results);
  return addr;
}

}  // namespace

std::string Endpoint::str() const { return host + ":" + std::to_string(port); }

Endpoint parseEndpoint(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    throw ModelError("net: endpoint must be host:port, got '" + text + "'");
  }
  Endpoint endpoint;
  endpoint.host = text.substr(0, colon);
  const std::string portText = text.substr(colon + 1);
  if (portText.empty() || portText.find_first_not_of("0123456789") != std::string::npos) {
    throw ModelError("net: bad port in '" + text + "'");
  }
  const unsigned long port = std::stoul(portText);
  if (port > 65535) throw ModelError("net: port out of range in '" + text + "'");
  endpoint.port = static_cast<std::uint16_t>(port);
  return endpoint;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::setNonBlocking(bool on) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throwErrno("fcntl(F_GETFL)");
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, next) < 0) throwErrno("fcntl(F_SETFL)");
}

IoResult Socket::read(char* buffer, std::size_t n) noexcept {
  IoResult result;
  for (;;) {
    const ssize_t got = ::read(fd_, buffer, n);
    if (got > 0) {
      result.bytes = static_cast<std::size_t>(got);
      return result;
    }
    if (got == 0) {
      result.closed = true;
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.wouldBlock = true;
      return result;
    }
    result.error = true;
    return result;
  }
}

IoResult Socket::write(const char* buffer, std::size_t n) noexcept {
  IoResult result;
  for (;;) {
    const ssize_t wrote = ::send(fd_, buffer, n, MSG_NOSIGNAL);
    if (wrote >= 0) {
      result.bytes = static_cast<std::size_t>(wrote);
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.wouldBlock = true;
      return result;
    }
    result.error = true;
    return result;
  }
}

void Socket::writeAll(const char* buffer, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const IoResult r = write(buffer + sent, n - sent);
    if (r.error || r.closed) throw ModelError("net: connection lost mid-write");
    if (r.wouldBlock) {
      // Blocking-client convenience: wait for writability instead of spinning.
      pollfd pfd{fd_, POLLOUT, 0};
      (void)::poll(&pfd, 1, -1);
      continue;
    }
    sent += r.bytes;
  }
}

void TcpListener::listen(const Endpoint& endpoint, int backlog) {
  if (socket_.valid()) throw ModelError("net: listener already open");
  const sockaddr_in addr = resolveIpv4(endpoint);
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throwErrno("socket");
  const int one = 1;
  (void)::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    throwErrno("bind " + endpoint.str());
  }
  if (::listen(sock.fd(), backlog) != 0) throwErrno("listen " + endpoint.str());
  sock.setNonBlocking(true);
  socket_ = std::move(sock);
}

std::optional<Socket> TcpListener::accept() {
  if (!socket_.valid()) throw ModelError("net: accept on a closed listener");
  for (;;) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket conn(fd);
      conn.setNonBlocking(true);
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return conn;
    }
    if (errno == EINTR) continue;
    // EAGAIN and the transient per-connection accept errors (a peer that
    // reset before we got to it) all mean "nothing usable right now".
    return std::nullopt;
  }
}

Endpoint TcpListener::local() const {
  if (!socket_.valid()) throw ModelError("net: local() on a closed listener");
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(socket_.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throwErrno("getsockname");
  }
  char host[INET_ADDRSTRLEN] = {0};
  (void)inet_ntop(AF_INET, &addr.sin_addr, host, sizeof host);
  return Endpoint{host, ntohs(addr.sin_port)};
}

Socket connectTcp(const Endpoint& endpoint) {
  const sockaddr_in addr = resolveIpv4(endpoint);
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throwErrno("socket");
  for (;;) {
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    throwErrno("connect " + endpoint.str());
  }
  const int one = 1;
  (void)::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

WakePipe::WakePipe() {
  if (::pipe(fds_) != 0) throwErrno("pipe");
  for (const int fd : fds_) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

WakePipe::~WakePipe() {
  for (int& fd : fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void WakePipe::notify() noexcept {
  const char byte = 1;
  // Async-signal-safe: one write on a non-blocking fd. A full pipe means a
  // wake is already pending — dropping this byte loses nothing.
  (void)!::write(fds_[1], &byte, 1);
}

void WakePipe::drain() noexcept {
  char buffer[64];
  while (::read(fds_[0], buffer, sizeof buffer) > 0) {
  }
}

void Poller::watch(int fd, bool read, bool write) {
  short requested = 0;
  if (read) requested |= POLLIN;
  if (write) requested |= POLLOUT;
  entries_.push_back(Entry{fd, requested, 0});
}

int Poller::wait(int timeoutMs) {
  if (entries_.empty()) return 0;
  std::vector<pollfd> fds;
  fds.reserve(entries_.size());
  for (const Entry& e : entries_) fds.push_back(pollfd{e.fd, e.requested, 0});
  const int ready = ::poll(fds.data(), fds.size(), timeoutMs);
  if (ready <= 0) return 0;  // timeout or EINTR: caller re-checks and re-polls
  for (std::size_t i = 0; i < entries_.size(); ++i) entries_[i].returned = fds[i].revents;
  return ready;
}

unsigned Poller::events(int fd) const noexcept {
  for (const Entry& e : entries_) {
    if (e.fd != fd) continue;
    unsigned mask = 0;
    if (e.returned & POLLIN) mask |= kReadable;
    if (e.returned & POLLOUT) mask |= kWritable;
    if (e.returned & (POLLERR | POLLHUP | POLLNVAL)) mask |= kError;
    return mask;
  }
  return 0;
}

}  // namespace pipesched::net
