#include "pipesched/net/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "pipesched/fault/fault.hpp"

namespace pipesched::net {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  // Snapshot errno before the message construction (which may allocate) and
  // restore it on the way out: connectTcpRetry classifies the caught error
  // by errno, which must still name the failing call.
  const int err = errno;
  std::string message = "net: " + what + ": " + std::strerror(err);
  errno = err;
  throw ModelError(std::move(message));
}

sockaddr_in resolveIpv4(const Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) == 1) return addr;
  // Not a numeric address: one resolver round-trip (IPv4 only — the serving
  // tier binds loopback/any in practice; v6 can join when a deployment needs
  // it without touching any caller).
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(endpoint.host.c_str(), nullptr, &hints, &results);
  if (rc != 0 || results == nullptr) {
    throw ModelError("net: cannot resolve host '" + endpoint.host +
                     "': " + gai_strerror(rc));
  }
  addr.sin_addr = reinterpret_cast<sockaddr_in*>(results->ai_addr)->sin_addr;
  ::freeaddrinfo(results);
  return addr;
}

}  // namespace

std::string Endpoint::str() const { return host + ":" + std::to_string(port); }

Endpoint parseEndpoint(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    throw ModelError("net: endpoint must be host:port, got '" + text + "'");
  }
  Endpoint endpoint;
  endpoint.host = text.substr(0, colon);
  const std::string portText = text.substr(colon + 1);
  if (portText.empty() || portText.find_first_not_of("0123456789") != std::string::npos) {
    throw ModelError("net: bad port in '" + text + "'");
  }
  const unsigned long port = std::stoul(portText);
  if (port > 65535) throw ModelError("net: port out of range in '" + text + "'");
  endpoint.port = static_cast<std::uint16_t>(port);
  return endpoint;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::setNonBlocking(bool on) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throwErrno("fcntl(F_GETFL)");
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, next) < 0) throwErrno("fcntl(F_SETFL)");
}

IoResult Socket::read(char* buffer, std::size_t n) noexcept {
  IoResult result;
  if (fault::injected(fault::sites::kNetRead)) {
    result.error = true;
    return result;
  }
  const ssize_t got = retryOnEintr([&] { return ::read(fd_, buffer, n); });
  if (got > 0) {
    result.bytes = static_cast<std::size_t>(got);
    return result;
  }
  if (got == 0) {
    result.closed = true;
    return result;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK) {
    result.wouldBlock = true;
    return result;
  }
  result.error = true;
  return result;
}

IoResult Socket::write(const char* buffer, std::size_t n) noexcept {
  IoResult result;
  if (fault::injected(fault::sites::kNetWrite)) {
    result.error = true;
    return result;
  }
  const ssize_t wrote = retryOnEintr([&] { return ::send(fd_, buffer, n, MSG_NOSIGNAL); });
  if (wrote >= 0) {
    result.bytes = static_cast<std::size_t>(wrote);
    return result;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK) {
    result.wouldBlock = true;
    return result;
  }
  result.error = true;
  return result;
}

void Socket::writeAll(const char* buffer, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const IoResult r = write(buffer + sent, n - sent);
    if (r.error || r.closed) throw ModelError("net: connection lost mid-write");
    if (r.wouldBlock) {
      // Blocking-client convenience: wait for writability instead of spinning.
      pollfd pfd{fd_, POLLOUT, 0};
      (void)::poll(&pfd, 1, -1);
      continue;
    }
    sent += r.bytes;
  }
}

void TcpListener::listen(const Endpoint& endpoint, int backlog) {
  if (socket_.valid()) throw ModelError("net: listener already open");
  const sockaddr_in addr = resolveIpv4(endpoint);
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throwErrno("socket");
  const int one = 1;
  (void)::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    throwErrno("bind " + endpoint.str());
  }
  if (::listen(sock.fd(), backlog) != 0) throwErrno("listen " + endpoint.str());
  sock.setNonBlocking(true);
  socket_ = std::move(sock);
}

std::optional<Socket> TcpListener::accept() {
  if (!socket_.valid()) throw ModelError("net: accept on a closed listener");
  // An injected accept fault presents as "nothing queued" — the event loop
  // simply retries on the next readiness edge.
  if (fault::injected(fault::sites::kNetAccept)) return std::nullopt;
  const int fd = retryOnEintr([&] { return ::accept(socket_.fd(), nullptr, nullptr); });
  if (fd < 0) {
    // EAGAIN and the transient per-connection accept errors (a peer that
    // reset before we got to it) all mean "nothing usable right now".
    return std::nullopt;
  }
  Socket conn(fd);
  conn.setNonBlocking(true);
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return conn;
}

Endpoint TcpListener::local() const {
  if (!socket_.valid()) throw ModelError("net: local() on a closed listener");
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(socket_.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throwErrno("getsockname");
  }
  char host[INET_ADDRSTRLEN] = {0};
  (void)inet_ntop(AF_INET, &addr.sin_addr, host, sizeof host);
  return Endpoint{host, ntohs(addr.sin_port)};
}

Socket connectTcp(const Endpoint& endpoint, int timeoutMs) {
  const sockaddr_in addr = resolveIpv4(endpoint);
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throwErrno("socket");
  // Always connect non-blocking and wait via poll(): one code path covers
  // the bounded and unbounded cases, and an EINTR during the wait retries
  // the poll instead of re-issuing connect(2) (which would yield EALREADY).
  sock.setNonBlocking(true);
  const int rc =
      ::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
    throwErrno("connect " + endpoint.str());
  }
  if (rc != 0) {
    const auto start = std::chrono::steady_clock::now();
    for (;;) {
      int remaining = -1;
      if (timeoutMs >= 0) {
        const auto elapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                                   std::chrono::steady_clock::now() - start)
                                   .count();
        remaining = timeoutMs - static_cast<int>(elapsedMs);
        if (remaining < 0) remaining = 0;
      }
      pollfd pfd{sock.fd(), POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, remaining);
      if (ready < 0 && errno == EINTR) continue;
      if (ready == 0) {
        errno = ETIMEDOUT;
        throwErrno("connect " + endpoint.str() + " (timeout " +
                   std::to_string(timeoutMs) + "ms)");
      }
      if (ready < 0) throwErrno("poll during connect " + endpoint.str());
      break;
    }
    int soError = 0;
    socklen_t len = sizeof soError;
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &soError, &len) != 0) {
      throwErrno("getsockopt(SO_ERROR) " + endpoint.str());
    }
    if (soError != 0) {
      errno = soError;
      throwErrno("connect " + endpoint.str());
    }
  }
  sock.setNonBlocking(false);
  const int one = 1;
  (void)::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

Socket connectTcpRetry(const Endpoint& endpoint, const RetryPolicy& policy, int timeoutMs) {
  // Transient = the peer might exist shortly (mid-restart, listen backlog
  // overflow, kernel resource blip). Everything else fails fast.
  const auto transient = [](int err) {
    return err == ECONNREFUSED || err == ECONNRESET || err == ETIMEDOUT ||
           err == EHOSTUNREACH || err == ENETUNREACH || err == EAGAIN || err == ENOBUFS;
  };
  std::uint64_t jitter = policy.seed;
  const int attempts = policy.attempts < 1 ? 1 : policy.attempts;
  int delayMs = policy.baseDelayMs;
  for (int attempt = 1;; ++attempt) {
    try {
      return connectTcp(endpoint, timeoutMs);
    } catch (const ModelError&) {
      // throwErrno restored errno to the failing call's code.
      if (attempt >= attempts || !transient(errno)) throw;
    }
    // Jittered backoff: uniform in [delay/2, delay], then double up to the
    // cap — retries from many clients de-synchronize instead of thundering.
    jitter = jitter * 6364136223846793005ULL + 1442695040888963407ULL;
    const int capped = delayMs > policy.maxDelayMs ? policy.maxDelayMs : delayMs;
    const int lower = capped / 2;
    const int sleepMs =
        capped <= 0 ? 0 : lower + static_cast<int>(jitter % static_cast<std::uint64_t>(capped - lower + 1));
    if (sleepMs > 0) std::this_thread::sleep_for(std::chrono::milliseconds(sleepMs));
    if (delayMs <= policy.maxDelayMs) delayMs *= 2;
  }
}

WakePipe::WakePipe() {
  if (::pipe(fds_) != 0) throwErrno("pipe");
  for (const int fd : fds_) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

WakePipe::~WakePipe() {
  for (int& fd : fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void WakePipe::notify() noexcept {
  const char byte = 1;
  // Async-signal-safe: one write on a non-blocking fd. A full pipe means a
  // wake is already pending — dropping this byte loses nothing.
  (void)!::write(fds_[1], &byte, 1);
}

void WakePipe::drain() noexcept {
  char buffer[64];
  while (retryOnEintr([&] { return ::read(fds_[0], buffer, sizeof buffer); }) > 0) {
  }
}

void Poller::watch(int fd, bool read, bool write) {
  short requested = 0;
  if (read) requested |= POLLIN;
  if (write) requested |= POLLOUT;
  entries_.push_back(Entry{fd, requested, 0});
}

int Poller::wait(int timeoutMs) {
  if (entries_.empty()) return 0;
  std::vector<pollfd> fds;
  fds.reserve(entries_.size());
  for (const Entry& e : entries_) fds.push_back(pollfd{e.fd, e.requested, 0});
  const int ready = ::poll(fds.data(), fds.size(), timeoutMs);
  if (ready <= 0) return 0;  // timeout or EINTR: caller re-checks and re-polls
  for (std::size_t i = 0; i < entries_.size(); ++i) entries_[i].returned = fds[i].revents;
  return ready;
}

unsigned Poller::events(int fd) const noexcept {
  for (const Entry& e : entries_) {
    if (e.fd != fd) continue;
    unsigned mask = 0;
    if (e.returned & POLLIN) mask |= kReadable;
    if (e.returned & POLLOUT) mask |= kWritable;
    if (e.returned & (POLLERR | POLLHUP | POLLNVAL)) mask |= kError;
    return mask;
  }
  return 0;
}

}  // namespace pipesched::net
