#include "pipesched/net/endpoints.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>
#include <vector>

#include "pipesched/io/json.hpp"
#include "pipesched/net/server.hpp"
#include "pipesched/obs/exposition.hpp"
#include "pipesched/obs/metrics.hpp"
#include "pipesched/stream/async_scheduler.hpp"
#include "pipesched/stream/sink.hpp"

namespace pipesched::net {

namespace {

/// Shared state of one in-flight POST /solve: a slot per input line, filled
/// by scheduler workers as outcomes land (parse-error slots are prefilled at
/// parse time). The last outcome to land completes the HTTP response; a shed
/// mid-body abandons the batch (503 already sent) and late outcomes are
/// simply dropped. Held by shared_ptr from every callback so it outlives the
/// connection whatever order workers finish in.
struct PendingSolve {
  std::mutex mutex;
  std::vector<std::string> lines;  ///< rendered JSONL lines, input order
  std::size_t remaining = 0;       ///< outcomes not yet landed
  std::size_t solvable = 0;        ///< well-formed lines submitted
  std::size_t timedOut = 0;        ///< outcomes that missed their deadline
  bool abandoned = false;          ///< shed: 503 sent, drop late outcomes
  HttpServer::Done done;

  /// Joins the slots into the response body. Caller holds `mutex`.
  [[nodiscard]] std::string body() const {
    std::string joined;
    for (const std::string& line : lines) {
      joined += line;
      joined += '\n';
    }
    return joined;
  }
};

/// Render buffer reused across lines. Outcome lines are rendered from
/// whichever scheduler worker lands the outcome, so the reuse is per-thread:
/// each worker keeps one buffer whose capacity persists, and warm rendering
/// allocates only the returned copy.
std::string& renderBuffer() {
  thread_local std::string buffer;
  buffer.clear();
  return buffer;
}

/// One outcome line, byte-identical to stdio serve's JsonlSink::emit:
/// {"index": I, "line": N, <writeOutcomeFields>}. `index` counts requests
/// (0-based, parse errors excluded) and `line` is the 1-based input line —
/// both scoped to this POST body, exactly like one stdio serve run over the
/// same lines.
std::string renderOutcomeLine(std::size_t index, std::size_t line,
                              const service::Request& request,
                              const service::RequestOutcome& outcome) {
  std::string& buffer = renderBuffer();
  io::StringOutStream out(buffer);
  io::JsonWriter w(out, /*pretty=*/false);
  w.beginObject();
  w.kv("index", index);
  w.kv("line", line);
  stream::writeOutcomeFields(w, request.name, outcome);
  w.endObject();
  return buffer;
}

/// A parse-error line, byte-identical to the stdio serve error handler:
/// {"line": N, "ok": false, "error": MSG}.
std::string renderParseErrorLine(std::size_t line, const std::string& message) {
  std::string& buffer = renderBuffer();
  io::StringOutStream out(buffer);
  io::JsonWriter w(out, /*pretty=*/false);
  w.beginObject();
  w.kv("line", line);
  w.kv("ok", false);
  w.kv("error", message);
  w.endObject();
  return buffer;
}

void handleSolve(HttpServer& server, stream::AsyncScheduler& scheduler,
                 const ServeEndpointsConfig& config, const HttpRequest& request,
                 HttpServer::Done done) {
  if (config.draining && config.draining()) {
    done(503, "application/json", "{\"draining\":true}\n");
    return;
  }

  // X-Deadline-Ms sets the default deadline for body lines without their own
  // deadline_ms — the HTTP spelling of `serve --deadline-ms`. The defaults
  // copy means the header scopes to this one POST.
  stream::JsonlDefaults defaults = config.defaults;
  if (const std::string* header = request.header("X-Deadline-Ms")) {
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(header->c_str(), &end);
    if (errno != 0 || end == header->c_str() || *end != '\0' ||
        !std::isfinite(value) || value < 0) {
      done(400, "text/plain",
           "X-Deadline-Ms must be a non-negative number of milliseconds\n");
      return;
    }
    defaults.deadlineMs = value;
  }

  // Parse the whole body up front: slots for every line (errors prefilled),
  // plus the list of well-formed requests to submit. Parsing is synchronous
  // and cheap next to solving; it also means a shed can be decided before
  // any response bytes are promised.
  auto pending = std::make_shared<PendingSolve>();
  struct Parsed {
    Parsed(service::Request r, std::size_t s, std::size_t i, std::size_t l)
        : request(std::move(r)), slot(s), index(i), line(l) {}
    service::Request request;
    std::size_t slot;   ///< position among all body lines
    std::size_t index;  ///< request index (parse errors excluded)
    std::size_t line;   ///< 1-based input line within the body
  };
  std::vector<Parsed> requests;
  std::istringstream body(request.body);
  stream::JsonlSource source(body, defaults,
                             [&](std::size_t line, const std::string& message) {
                               pending->lines.push_back(renderParseErrorLine(line, message));
                             });
  while (auto next = source.next()) {
    const std::size_t slot = pending->lines.size();
    pending->lines.emplace_back();  // filled when the outcome lands
    requests.emplace_back(std::move(*next), slot, requests.size(), source.linesRead());
  }

  pending->remaining = requests.size();
  pending->solvable = requests.size();
  if (pending->remaining == 0) {
    // Nothing to solve (empty body or all lines malformed): answer now.
    done(200, "application/x-ndjson", pending->body());
    return;
  }
  pending->done = std::move(done);

  for (Parsed& parsed : requests) {
    const std::size_t slot = parsed.slot;
    const std::size_t index = parsed.index;
    const std::size_t line = parsed.line;
    const bool accepted = scheduler.trySubmit(
        std::move(parsed.request),
        [pending, slot, index, line](const service::Request& req,
                                     const service::RequestOutcome& outcome) {
          std::string rendered = renderOutcomeLine(index, line, req, outcome);
          if (outcome.timedOut) {
            obs::registry().counter(obs::names::kNetTimeout).add();
          }
          std::unique_lock<std::mutex> lock(pending->mutex);
          pending->lines[slot] = std::move(rendered);
          if (outcome.timedOut) ++pending->timedOut;
          const bool last = --pending->remaining == 0;
          if (!last || pending->abandoned) return;
          // 504 only when the entire batch missed its deadline — a mixed
          // batch stays 200 with per-line timed_out flags, matching the
          // per-line error contract everywhere else in the protocol.
          const bool allTimedOut =
              pending->timedOut > 0 && pending->timedOut == pending->solvable;
          std::string responseBody = pending->body();
          HttpServer::Done complete = std::move(pending->done);
          lock.unlock();  // never invoke the transport under our lock
          complete(allTimedOut ? 504 : 200, "application/x-ndjson", responseBody);
        });
    if (!accepted) {
      // Queue saturated: shed the whole POST. Outcomes of lines already
      // submitted still complete into the abandoned batch and are dropped.
      server.noteShed();
      std::unique_lock<std::mutex> lock(pending->mutex);
      pending->abandoned = true;
      HttpServer::Done complete = std::move(pending->done);
      lock.unlock();
      complete(503, "text/plain", "scheduler queue full — request shed\n");
      return;
    }
  }
}

}  // namespace

void installServeEndpoints(HttpServer& server, stream::AsyncScheduler& scheduler,
                           ServeEndpointsConfig config) {
  auto shared = std::make_shared<ServeEndpointsConfig>(std::move(config));

  server.handle("POST", "/solve",
                [&server, &scheduler, shared](const HttpRequest& request,
                                              HttpServer::Done done) {
                  handleSolve(server, scheduler, *shared, request, std::move(done));
                });

  server.handle("GET", "/stats",
                [shared](const HttpRequest&, HttpServer::Done done) {
                  std::string body =
                      shared->statsSnapshot ? shared->statsSnapshot() : std::string();
                  if (body.empty() || body.back() != '\n') body += '\n';
                  done(200, "application/json", std::move(body));
                });

  server.handle("GET", "/healthz",
                [shared](const HttpRequest&, HttpServer::Done done) {
                  const bool draining = shared->draining && shared->draining();
                  std::ostringstream buffer;
                  io::JsonWriter w(buffer, /*pretty=*/false);
                  w.beginObject();
                  w.kv("status", draining ? "draining" : "ok");
                  w.kv("draining", draining);
                  if (shared->uptimeSeconds) {
                    w.kv("uptime_seconds", shared->uptimeSeconds());
                  }
                  w.endObject();
                  done(draining ? 503 : 200, "application/json",
                       std::move(buffer).str() + "\n");
                });

  server.handle("GET", "/metrics",
                [](const HttpRequest&, HttpServer::Done done) {
                  done(200, "text/plain; version=0.0.4",
                       obs::renderSnapshotPrometheus(obs::registry().snapshot()));
                });
}

}  // namespace pipesched::net
