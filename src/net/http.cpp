#include "pipesched/net/http.hpp"

#include <algorithm>
#include <cctype>

#include "pipesched/fault/fault.hpp"

namespace pipesched::net {

namespace {

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && (text[begin] == ' ' || text[begin] == '\t')) ++begin;
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t')) --end;
  return text.substr(begin, end - begin);
}

bool equalsIgnoreCase(const std::string& a, const std::string& b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

/// RFC 7230 §6.1: Connection carries a comma-separated list of
/// case-insensitive tokens ("close, TE", "keep-alive, Upgrade"), and
/// repeated Connection header fields combine into one list. The option is
/// present when any element of any field equals it.
bool connectionListContains(const HttpRequest& request, const std::string& option) {
  for (const auto& [key, value] : request.headers) {
    if (!equalsIgnoreCase(key, "Connection")) continue;
    std::size_t start = 0;
    while (start <= value.size()) {
      const std::size_t comma = value.find(',', start);
      const std::string token = trim(
          value.substr(start, comma == std::string::npos ? std::string::npos
                                                         : comma - start));
      if (equalsIgnoreCase(token, option)) return true;
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  return false;
}

}  // namespace

std::string HttpRequest::path() const {
  const std::size_t query = target.find('?');
  return query == std::string::npos ? target : target.substr(0, query);
}

const std::string* HttpRequest::header(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (equalsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

HttpParser::Status HttpParser::fail(int status, std::string message) {
  status_ = Status::kError;
  errorStatus_ = status;
  error_ = std::move(message);
  return status_;
}

HttpParser::Status HttpParser::consume(const char* data, std::size_t n) {
  // Always buffer: bytes arriving after kComplete belong to the next
  // pipelined request and must survive until reset() re-arms on them.
  buffer_.append(data, n);
  if (status_ != Status::kNeedMore) return status_;
  // Armed `http.parse` faults surface as a parse failure — the connection
  // answers 400 and closes, exactly like genuinely malformed bytes.
  if (fault::injected(fault::sites::kHttpParse)) {
    return fail(400, "fault injected: http.parse");
  }
  return advance();
}

HttpParser::Status HttpParser::advance() {
  if (!headersDone_) {
    const std::size_t headersEnd = buffer_.find("\r\n\r\n");
    if (headersEnd == std::string::npos) {
      if (buffer_.size() > maxHeaderBytes_) {
        return fail(431, "request head exceeds " + std::to_string(maxHeaderBytes_) +
                             " bytes");
      }
      return status_;
    }
    if (headersEnd > maxHeaderBytes_) {
      return fail(431,
                  "request head exceeds " + std::to_string(maxHeaderBytes_) + " bytes");
    }

    // Request line: METHOD SP target SP HTTP-version.
    std::size_t lineEnd = buffer_.find("\r\n");
    const std::string requestLine = buffer_.substr(0, lineEnd);
    const std::size_t firstSpace = requestLine.find(' ');
    const std::size_t lastSpace = requestLine.rfind(' ');
    if (firstSpace == std::string::npos || lastSpace == firstSpace) {
      return fail(400, "malformed request line");
    }
    request_.method = requestLine.substr(0, firstSpace);
    request_.target = requestLine.substr(firstSpace + 1, lastSpace - firstSpace - 1);
    request_.version = requestLine.substr(lastSpace + 1);
    if (request_.method.empty() || request_.target.empty()) {
      return fail(400, "malformed request line");
    }
    if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
      return fail(505, "unsupported protocol version '" + request_.version + "'");
    }
    request_.keepAlive = request_.version == "HTTP/1.1";

    // Header fields up to the blank line.
    std::size_t cursor = lineEnd + 2;
    while (cursor < headersEnd) {
      lineEnd = buffer_.find("\r\n", cursor);
      const std::string line = buffer_.substr(cursor, lineEnd - cursor);
      cursor = lineEnd + 2;
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos || colon == 0) {
        return fail(400, "malformed header field");
      }
      request_.headers.emplace_back(line.substr(0, colon), trim(line.substr(colon + 1)));
    }

    // Tokenized per RFC 7230 — "close, TE" must still close, and the tokens
    // are matched case-insensitively wherever they sit in the list. "close"
    // is checked last so it wins when both appear.
    if (connectionListContains(request_, "keep-alive")) request_.keepAlive = true;
    if (connectionListContains(request_, "close")) request_.keepAlive = false;
    if (request_.header("Transfer-Encoding") != nullptr) {
      return fail(501, "Transfer-Encoding is not supported; send Content-Length");
    }
    contentLength_ = 0;
    const std::string* length = nullptr;
    for (const auto& [key, value] : request_.headers) {
      if (!equalsIgnoreCase(key, "Content-Length")) continue;
      // Mismatched duplicates are the classic request-smuggling vector
      // (different intermediaries picking different occurrences) — reject.
      // Byte-identical duplicates are harmless and accepted.
      if (length != nullptr && *length != value) {
        return fail(400, "conflicting Content-Length headers");
      }
      length = &value;
    }
    if (length != nullptr) {
      if (length->empty() ||
          length->find_first_not_of("0123456789") != std::string::npos) {
        return fail(400, "malformed Content-Length");
      }
      // stoull cannot throw past the digits-only check except on overflow,
      // which the 20-digit guard below rules out before conversion.
      if (length->size() > 19) return fail(413, "Content-Length too large");
      contentLength_ = static_cast<std::size_t>(std::stoull(*length));
      if (contentLength_ > maxBodyBytes_) {
        return fail(413, "body of " + *length + " bytes exceeds limit of " +
                             std::to_string(maxBodyBytes_));
      }
    }
    bodyStart_ = headersEnd + 4;
    headersDone_ = true;
  }

  if (buffer_.size() - bodyStart_ < contentLength_) return status_;
  request_.body = buffer_.substr(bodyStart_, contentLength_);
  status_ = Status::kComplete;
  return status_;
}

HttpParser::Status HttpParser::reset() {
  std::string leftover;
  if (status_ == Status::kComplete) {
    leftover = buffer_.substr(bodyStart_ + contentLength_);
  }
  buffer_ = std::move(leftover);
  bodyStart_ = 0;
  contentLength_ = 0;
  headersDone_ = false;
  status_ = Status::kNeedMore;
  request_ = HttpRequest{};
  errorStatus_ = 400;
  error_.clear();
  if (!buffer_.empty()) return advance();
  return status_;
}

const char* httpStatusText(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string renderHttpResponse(int status, const std::string& contentType,
                               const std::string& body, bool keepAlive,
                               const std::string& extraHeaders) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + httpStatusText(status) +
                    "\r\n";
  out += "Content-Type: " + contentType + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += keepAlive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += extraHeaders;
  out += "\r\n";
  out += body;
  return out;
}

}  // namespace pipesched::net
