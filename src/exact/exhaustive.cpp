#include "pipesched/exact/exhaustive.hpp"

#include <algorithm>

namespace pipesched::exact {

namespace {

using core::Assignment;
using core::Interval;

class Enumerator {
 public:
  Enumerator(const Evaluator& eval, const ExhaustiveOptions& options,
             const std::function<bool(const IntervalMapping&, const Metrics&)>& visit)
      : eval_(eval), options_(options), visit_(visit), n_(eval.pipeline().stageCount()),
        p_(eval.platform().processorCount()), used_(p_, false) {}

  void run() {
    if (n_ == 0) return;
    parts_.clear();
    recurse(0);
  }

 private:
  /// Extends the partial mapping covering stages [0, start) with one more
  /// interval starting at `start`.
  bool recurse(std::size_t start) {
    const std::size_t intervalsSoFar = parts_.size();
    for (std::size_t end = start; end < n_; ++end) {
      // Feasibility: the remaining n-1-end stages need at least 1 interval
      // if non-empty, and we may not exceed min(p, maxIntervals) intervals.
      const bool lastInterval = (end == n_ - 1);
      const std::size_t intervalsAfter = intervalsSoFar + 1;
      if (!lastInterval &&
          (intervalsAfter >= std::min<std::size_t>(p_, options_.maxIntervals))) {
        // No room for another interval after this one: only `end == n-1`
        // can close the mapping; keep scanning larger ends.
        continue;
      }
      for (std::size_t u = 0; u < p_; ++u) {
        if (used_[u]) continue;
        used_[u] = true;
        parts_.push_back(Assignment{Interval{start, end}, u});
        bool keepGoing = true;
        if (lastInterval) {
          if (++visited_ > options_.mappingLimit) {
            throw ModelError("exhaustive enumeration exceeded its mapping limit");
          }
          const IntervalMapping mapping(parts_);
          keepGoing = visit_(mapping, eval_.evaluate(mapping));
        } else {
          keepGoing = recurse(end + 1);
        }
        parts_.pop_back();
        used_[u] = false;
        if (!keepGoing) return false;
      }
    }
    return true;
  }

  const Evaluator& eval_;
  ExhaustiveOptions options_;
  const std::function<bool(const IntervalMapping&, const Metrics&)>& visit_;
  std::size_t n_;
  std::size_t p_;
  std::vector<bool> used_;
  std::vector<Assignment> parts_;
  std::uint64_t visited_ = 0;
};

}  // namespace

void enumerateMappings(const Evaluator& eval,
                       const std::function<bool(const IntervalMapping&, const Metrics&)>& visit,
                       const ExhaustiveOptions& options) {
  Enumerator(eval, options, visit).run();
}

std::optional<ExactSolution> exhaustiveMinPeriod(const Evaluator& eval, Real latencyCap,
                                                 const ExhaustiveOptions& options) {
  std::optional<ExactSolution> best;
  enumerateMappings(
      eval,
      [&](const IntervalMapping& mapping, const Metrics& metrics) {
        if (lessOrNearlyEqual(metrics.latency, latencyCap) &&
            (!best || metrics.period < best->metrics.period)) {
          best = ExactSolution{mapping, metrics};
        }
        return true;
      },
      options);
  return best;
}

std::optional<ExactSolution> exhaustiveMinLatency(const Evaluator& eval, Real periodCap,
                                                  const ExhaustiveOptions& options) {
  std::optional<ExactSolution> best;
  enumerateMappings(
      eval,
      [&](const IntervalMapping& mapping, const Metrics& metrics) {
        if (lessOrNearlyEqual(metrics.period, periodCap) &&
            (!best || metrics.latency < best->metrics.latency)) {
          best = ExactSolution{mapping, metrics};
        }
        return true;
      },
      options);
  return best;
}

std::vector<core::ParetoPoint> exhaustiveParetoFront(const Evaluator& eval,
                                                     const ExhaustiveOptions& options) {
  core::ParetoFrontBuilder builder;
  enumerateMappings(
      eval,
      [&](const IntervalMapping& mapping, const Metrics& metrics) {
        builder.offer(core::ParetoPoint{metrics.period, metrics.latency, mapping});
        return true;
      },
      options);
  return builder.take();
}

}  // namespace pipesched::exact
