#include "pipesched/exact/one_to_one.hpp"

#include <algorithm>
#include <numeric>
#include <set>

#include "pipesched/exact/hungarian.hpp"

namespace pipesched::exact {

namespace {

using core::Interval;

/// Communication part of stage k's one-to-one cycle: (delta_k + delta_{k+1})/b.
Real commTime(const Evaluator& eval, std::size_t k) {
  const Real b = eval.platform().bandwidth();
  return (eval.pipeline().comm(k) + eval.pipeline().comm(k + 1)) / b;
}

}  // namespace

bool oneToOneFeasible(const Evaluator& eval, Real periodBound, std::vector<std::size_t>* out) {
  const std::size_t n = eval.pipeline().stageCount();
  const std::size_t p = eval.platform().processorCount();
  if (n > p) return false;

  // Minimum speed stage k needs: w_k / (bound - commTime(k)).
  std::vector<Real> needed(n);
  for (std::size_t k = 0; k < n; ++k) {
    const Real slack = periodBound - commTime(eval, k);
    if (slack <= Real(0)) return false;
    needed[k] = eval.pipeline().work(k) / slack;
  }
  // Greedy threshold matching: most demanding stage gets the fastest
  // processor; feasible iff every pairing fits. (Exchange argument: any
  // feasible matching can be reordered into this one.)
  std::vector<std::size_t> stageOrder(n);
  std::iota(stageOrder.begin(), stageOrder.end(), std::size_t{0});
  std::stable_sort(stageOrder.begin(), stageOrder.end(),
                   [&](std::size_t a, std::size_t b) { return needed[a] > needed[b]; });
  const std::vector<std::size_t> procOrder = eval.platform().processorsBySpeed();

  std::vector<std::size_t> assignment(n);
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t k = stageOrder[r];
    const std::size_t u = procOrder[r];
    const Real cycle = commTime(eval, k) + eval.pipeline().work(k) / eval.platform().speed(u);
    if (!lessOrNearlyEqual(cycle, periodBound)) return false;
    assignment[k] = u;
  }
  if (out) *out = std::move(assignment);
  return true;
}

std::optional<ExactSolution> oneToOneMinPeriod(const Evaluator& eval) {
  const std::size_t n = eval.pipeline().stageCount();
  const std::size_t p = eval.platform().processorCount();
  if (n > p) return std::nullopt;

  // Every achievable one-to-one period is a stage-on-processor cycle-time.
  std::set<Real> candidateSet;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t u = 0; u < p; ++u) {
      candidateSet.insert(commTime(eval, k) +
                          eval.pipeline().work(k) / eval.platform().speed(u));
    }
  }
  const std::vector<Real> candidates(candidateSet.begin(), candidateSet.end());

  // Binary search the smallest feasible candidate.
  std::size_t lo = 0;
  std::size_t hi = candidates.size() - 1;
  if (!oneToOneFeasible(eval, candidates[hi])) return std::nullopt;  // cannot happen
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (oneToOneFeasible(eval, candidates[mid])) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  std::vector<std::size_t> witness;
  if (!oneToOneFeasible(eval, candidates[lo], &witness)) {
    throw ModelError("oneToOneMinPeriod: internal feasibility inconsistency");
  }
  const IntervalMapping mapping = IntervalMapping::oneToOne(witness);
  return ExactSolution{mapping, eval.evaluate(mapping)};
}

std::optional<ExactSolution> oneToOneMinLatencyForPeriod(const Evaluator& eval,
                                                         Real periodBound) {
  const std::size_t n = eval.pipeline().stageCount();
  const std::size_t p = eval.platform().processorCount();
  if (n > p) return std::nullopt;

  // The communication part of the latency is the same for every one-to-one
  // mapping, so minimizing latency = minimizing sum_k w_k / s_alloc(k) over
  // assignments whose cycles respect the bound: a min-cost assignment with
  // forbidden pairs.
  std::vector<std::vector<Real>> cost(n, std::vector<Real>(p, kInfinity));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t u = 0; u < p; ++u) {
      const Real cycle = commTime(eval, k) + eval.pipeline().work(k) / eval.platform().speed(u);
      if (lessOrNearlyEqual(cycle, periodBound)) {
        cost[k][u] = eval.pipeline().work(k) / eval.platform().speed(u);
      }
    }
  }
  const auto assignment = solveAssignment(cost);
  if (!assignment) return std::nullopt;
  const IntervalMapping mapping = IntervalMapping::oneToOne(assignment->columnOfRow);
  return ExactSolution{mapping, eval.evaluate(mapping)};
}

}  // namespace pipesched::exact
