#include "pipesched/exact/bnb.hpp"

#include <algorithm>
#include <vector>

namespace pipesched::exact {

namespace {

using core::Assignment;
using core::Interval;

enum class Mode { kMinLatency, kMinPeriod };

class BnbSolver {
 public:
  BnbSolver(const Evaluator& eval, Mode mode, Real bound, const BnbOptions& options)
      : eval_(eval), mode_(mode), bound_(bound), options_(options),
        n_(eval.pipeline().stageCount()), order_(eval.platform().processorsBySpeed()),
        used_(eval.platform().processorCount(), false),
        bandwidth_(eval.platform().bandwidth()),  // throws on fully-het: unsupported here
        maxSpeed_(eval.platform().maxSpeed()) {}

  std::optional<ExactSolution> solve() {
    recurse(0, /*latencySoFar=*/Real(0), /*maxCycleSoFar=*/Real(0));
    if (!best_) return std::nullopt;
    return best_;
  }

 private:
  /// Optimistic completion of the latency: remaining work on the globally
  /// fastest processor, no inter-processor communications except the final
  /// output delta_n (always paid).
  [[nodiscard]] Real latencyLowerBound(std::size_t start, Real latencySoFar) const {
    Real lb = latencySoFar + eval_.pipeline().comm(n_) / bandwidth_;
    if (start < n_) lb += eval_.pipeline().workSum(start, n_ - 1) / maxSpeed_;
    return lb;
  }

  /// Optimistic completion of the period: the interval opening at `start`
  /// pays at least its input communication plus its first stage's work on
  /// the fastest processor.
  [[nodiscard]] Real periodLowerBound(std::size_t start) const {
    if (start >= n_) return Real(0);
    return eval_.pipeline().comm(start) / bandwidth_ +
           eval_.pipeline().work(start) / maxSpeed_;
  }

  void recurse(std::size_t start, Real latencySoFar, Real maxCycleSoFar) {
    if (++nodes_ > options_.nodeLimit) {
      throw ModelError("branch-and-bound exceeded its node limit");
    }
    if (start == n_) {
      const Real latency = latencySoFar + eval_.pipeline().comm(n_) / bandwidth_;
      finishCandidate(latency, maxCycleSoFar);
      return;
    }
    // Objective-based pruning.
    if (mode_ == Mode::kMinLatency) {
      if (best_ && latencyLowerBound(start, latencySoFar) >= best_->metrics.latency) return;
    } else {
      if (latencyLowerBound(start, latencySoFar) > bound_ + kTimeEps) return;
      const Real optimistic = std::max(maxCycleSoFar, periodLowerBound(start));
      if (best_ && optimistic >= best_->metrics.period) return;
    }
    const std::size_t intervalsLeft =
        eval_.platform().processorCount() - parts_.size();
    if (intervalsLeft == 0) return;

    for (std::size_t end = start; end < n_; ++end) {
      if (end < n_ - 1 && intervalsLeft == 1) continue;  // must close the mapping
      const Interval iv{start, end};
      Real lastSpeedTried = -1;
      for (std::size_t u : order_) {
        if (used_[u]) continue;
        if (eval_.platform().speed(u) == lastSpeedTried) continue;  // interchangeable
        lastSpeedTried = eval_.platform().speed(u);

        const Real cycle = eval_.cycleTime(iv, u);
        const Real inPlusCompute =
            eval_.pipeline().comm(start) / bandwidth_ + eval_.computeTime(iv, u);
        const Real newLatency = latencySoFar + inPlusCompute;
        const Real newMaxCycle = std::max(maxCycleSoFar, cycle);

        // Constraint-based pruning on the partial mapping.
        if (mode_ == Mode::kMinLatency) {
          if (cycle > bound_ + kTimeEps) continue;
        } else {
          if (best_ && newMaxCycle >= best_->metrics.period) continue;
        }

        used_[u] = true;
        parts_.push_back(Assignment{iv, u});
        recurse(end + 1, newLatency, newMaxCycle);
        parts_.pop_back();
        used_[u] = false;
      }
    }
  }

  void finishCandidate(Real latency, Real period) {
    if (mode_ == Mode::kMinLatency) {
      if (period > bound_ + kTimeEps) return;
      if (best_ && latency >= best_->metrics.latency) return;
    } else {
      if (latency > bound_ + kTimeEps) return;
      if (best_ && period >= best_->metrics.period) return;
    }
    const IntervalMapping mapping(parts_);
    best_ = ExactSolution{mapping, eval_.evaluate(mapping)};
  }

  const Evaluator& eval_;
  Mode mode_;
  Real bound_;
  BnbOptions options_;
  std::size_t n_;
  std::vector<std::size_t> order_;
  std::vector<bool> used_;
  Real bandwidth_;
  Real maxSpeed_;
  std::vector<Assignment> parts_;
  std::optional<ExactSolution> best_;
  std::uint64_t nodes_ = 0;
};

}  // namespace

std::optional<ExactSolution> bnbMinLatencyForPeriod(const Evaluator& eval, Real periodBound,
                                                    const BnbOptions& options) {
  return BnbSolver(eval, Mode::kMinLatency, periodBound, options).solve();
}

std::optional<ExactSolution> bnbMinPeriodForLatency(const Evaluator& eval, Real latencyBound,
                                                    const BnbOptions& options) {
  return BnbSolver(eval, Mode::kMinPeriod, latencyBound, options).solve();
}

ExactSolution bnbMinPeriod(const Evaluator& eval, const BnbOptions& options) {
  auto solution = bnbMinPeriodForLatency(eval, kInfinity, options);
  if (!solution) {
    throw ModelError("bnbMinPeriod: no mapping exists (cannot happen for valid inputs)");
  }
  return *solution;
}

}  // namespace pipesched::exact
