#include "pipesched/exact/homog_dp.hpp"

#include <algorithm>
#include <set>

namespace pipesched::exact {

namespace {

using core::Assignment;
using core::Interval;

void requireHomogeneous(const Evaluator& eval) {
  if (!eval.platform().isFullyHomogeneous()) {
    throw ModelError("homog DP: platform must be fully homogeneous");
  }
}

/// Builds the mapping for interval boundaries `starts` (ascending, first 0),
/// assigning processors in index order (all processors are identical).
IntervalMapping buildMapping(std::size_t n, const std::vector<std::size_t>& starts) {
  std::vector<Assignment> parts;
  parts.reserve(starts.size());
  for (std::size_t k = 0; k < starts.size(); ++k) {
    const std::size_t end = (k + 1 < starts.size()) ? starts[k + 1] - 1 : n - 1;
    parts.push_back(Assignment{Interval{starts[k], end}, k});
  }
  return IntervalMapping(std::move(parts));
}

}  // namespace

ExactSolution homogMinPeriod(const Evaluator& eval) {
  requireHomogeneous(eval);
  const std::size_t n = eval.pipeline().stageCount();
  const std::size_t m = std::min(eval.platform().processorCount(), n);

  // g[k][i]: minimal max-cycle covering the first i stages with exactly k
  // intervals; cut[k][i]: start of the last interval.
  const Real inf = kInfinity;
  std::vector<std::vector<Real>> g(m + 1, std::vector<Real>(n + 1, inf));
  std::vector<std::vector<std::size_t>> cut(m + 1, std::vector<std::size_t>(n + 1, 0));
  g[0][0] = Real(0);
  for (std::size_t k = 1; k <= m; ++k) {
    for (std::size_t i = k; i <= n; ++i) {
      for (std::size_t j = k - 1; j < i; ++j) {
        if (g[k - 1][j] == inf) continue;
        const Real cycle = eval.cycleTime(Interval{j, i - 1}, 0);
        const Real candidate = std::max(g[k - 1][j], cycle);
        if (candidate < g[k][i]) {
          g[k][i] = candidate;
          cut[k][i] = j;
        }
      }
    }
  }

  // Unlike pure chains-to-chains, adding intervals can *increase* the period
  // (each cut adds communications), so take the best k.
  std::size_t bestK = 1;
  for (std::size_t k = 2; k <= m; ++k) {
    if (g[k][n] < g[bestK][n]) bestK = k;
  }
  std::vector<std::size_t> starts(bestK);
  std::size_t boundary = n;
  for (std::size_t k = bestK; k >= 1; --k) {
    starts[k - 1] = cut[k][boundary];
    boundary = cut[k][boundary];
  }
  const IntervalMapping mapping = buildMapping(n, starts);
  return ExactSolution{mapping, eval.evaluate(mapping)};
}

std::optional<ExactSolution> homogMinLatencyForPeriod(const Evaluator& eval, Real periodBound) {
  requireHomogeneous(eval);
  const std::size_t n = eval.pipeline().stageCount();
  const std::size_t m = std::min(eval.platform().processorCount(), n);
  const Real b = eval.platform().bandwidth();

  // f[k][i]: minimal latency prefix (input comms + computes of the first k
  // intervals covering i stages) with every cycle <= periodBound.
  const Real inf = kInfinity;
  std::vector<std::vector<Real>> f(m + 1, std::vector<Real>(n + 1, inf));
  std::vector<std::vector<std::size_t>> cut(m + 1, std::vector<std::size_t>(n + 1, 0));
  f[0][0] = Real(0);
  for (std::size_t k = 1; k <= m; ++k) {
    for (std::size_t i = k; i <= n; ++i) {
      for (std::size_t j = k - 1; j < i; ++j) {
        if (f[k - 1][j] == inf) continue;
        const Interval iv{j, i - 1};
        if (!lessOrNearlyEqual(eval.cycleTime(iv, 0), periodBound)) continue;
        const Real candidate =
            f[k - 1][j] + eval.pipeline().comm(j) / b + eval.computeTime(iv, 0);
        if (candidate < f[k][i]) {
          f[k][i] = candidate;
          cut[k][i] = j;
        }
      }
    }
  }
  std::size_t bestK = 0;
  Real bestLatency = inf;
  for (std::size_t k = 1; k <= m; ++k) {
    if (f[k][n] < bestLatency) {
      bestLatency = f[k][n];
      bestK = k;
    }
  }
  if (bestK == 0) return std::nullopt;

  std::vector<std::size_t> starts(bestK);
  std::size_t boundary = n;
  for (std::size_t k = bestK; k >= 1; --k) {
    starts[k - 1] = cut[k][boundary];
    boundary = cut[k][boundary];
  }
  const IntervalMapping mapping = buildMapping(n, starts);
  return ExactSolution{mapping, eval.evaluate(mapping)};
}

std::vector<core::ParetoPoint> homogParetoFront(const Evaluator& eval) {
  requireHomogeneous(eval);
  const std::size_t n = eval.pipeline().stageCount();

  std::set<Real> candidates;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      candidates.insert(eval.cycleTime(Interval{i, j}, 0));
    }
  }
  core::ParetoFrontBuilder builder;
  for (Real period : candidates) {
    if (auto solution = homogMinLatencyForPeriod(eval, period)) {
      builder.offer(core::ParetoPoint{solution->metrics.period, solution->metrics.latency,
                                      std::move(solution->mapping)});
    }
  }
  return builder.take();
}

}  // namespace pipesched::exact
