#include "pipesched/exact/hungarian.hpp"

namespace pipesched::exact {

std::optional<AssignmentResult> solveAssignment(const std::vector<std::vector<Real>>& cost) {
  const std::size_t rows = cost.size();
  if (rows == 0) return AssignmentResult{};
  const std::size_t cols = cost.front().size();
  if (cols < rows) {
    throw ModelError("solveAssignment: needs rows <= columns");
  }
  for (const auto& row : cost) {
    if (row.size() != cols) throw ModelError("solveAssignment: ragged cost matrix");
  }

  // Shortest-augmenting-path Hungarian with potentials (1-based internal
  // indexing; p[j] = row matched to column j, 0 = free).
  std::vector<Real> u(rows + 1, 0), v(cols + 1, 0), minv(cols + 1, 0);
  std::vector<std::size_t> p(cols + 1, 0), way(cols + 1, 0);
  std::vector<bool> used(cols + 1, false);

  for (std::size_t i = 1; i <= rows; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::fill(minv.begin(), minv.end(), kInfinity);
    std::fill(used.begin(), used.end(), false);
    do {
      used[j0] = true;
      const std::size_t i0 = p[j0];
      Real delta = kInfinity;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= cols; ++j) {
        if (used[j]) continue;
        const Real c = cost[i0 - 1][j - 1];
        const Real cur = (c == kInfinity) ? kInfinity : c - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      if (delta == kInfinity) return std::nullopt;  // row i cannot be matched
      for (std::size_t j = 0; j <= cols; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else if (minv[j] != kInfinity) {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Unwind the augmenting path.
    while (j0 != 0) {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    }
  }

  AssignmentResult result;
  result.columnOfRow.assign(rows, 0);
  for (std::size_t j = 1; j <= cols; ++j) {
    if (p[j] != 0) result.columnOfRow[p[j] - 1] = j - 1;
  }
  for (std::size_t i = 0; i < rows; ++i) {
    const Real c = cost[i][result.columnOfRow[i]];
    if (c == kInfinity) return std::nullopt;  // defensive: forbidden pairing leaked
    result.totalCost += c;
  }
  return result;
}

}  // namespace pipesched::exact
