#include "pipesched/heuristics/splitting_engine.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "pipesched/core/delta_evaluation.hpp"

namespace pipesched::heuristics {

namespace {

using core::Assignment;
using core::Interval;

struct Candidate {
  /// Replacement parts inline (2-way and 3-way splits only) so scoring a
  /// candidate never allocates.
  std::array<Assignment, 3> parts{};
  std::size_t count = 0;
  Real maxNewCycle = kInfinity;
  Real latencyAfter = kInfinity;
  Real score = kInfinity;

  /// Deterministic strict-weak ordering: primary score, then the two
  /// secondary criteria, so equal-score candidates resolve identically on
  /// every run.
  [[nodiscard]] bool betterThan(const Candidate& other) const {
    if (score != other.score) return score < other.score;
    if (maxNewCycle != other.maxNewCycle) return maxNewCycle < other.maxNewCycle;
    return latencyAfter < other.latencyAfter;
  }
};

/// Removes `value` from a vector (first occurrence).
void removeValue(std::vector<std::size_t>& v, std::size_t value) {
  const auto it = std::find(v.begin(), v.end(), value);
  if (it != v.end()) v.erase(it);
}

class Engine {
 public:
  Engine(const Evaluator& eval, const EngineConfig& config)
      : eval_(eval), config_(config), delta_(eval, workspace_) {
    workspace_.reserve(eval.platform().processorCount(), eval.platform().processorCount());
    delta_.load(eval.optimalLatencyMapping());
    const std::size_t owner = delta_.assignment(0).processor;
    for (std::size_t u : eval.platform().processorsBySpeed()) {
      if (u != owner) available_.push_back(u);
    }
  }

  EngineResult run() {
    EngineResult result;
    for (;;) {
      const Metrics metrics = delta_.metrics();
      if (config_.periodTarget &&
          lessOrNearlyEqual(metrics.period, *config_.periodTarget)) {
        result.reachedTarget = true;
        break;
      }
      if (result.splits >= config_.maxSplits) break;
      const std::optional<Candidate> best = bestCandidate(metrics);
      if (!best) break;
      applyCandidate(metrics.bottleneckInterval, *best);
      ++result.splits;
    }
    result.mapping = delta_.mapping();
    result.metrics = delta_.metrics();
    if (!config_.periodTarget) result.reachedTarget = true;  // exhaustion mode
    core::recordDeltaKernelStats(delta_.stats());
    return result;
  }

 private:
  /// Enumerates the admissible splits of the bottleneck interval and returns
  /// the rule-best one, or nullopt when no admissible split exists.
  std::optional<Candidate> bestCandidate(const Metrics& metrics) {
    const std::size_t j = metrics.bottleneckInterval;
    const Interval victim = delta_.assignment(j).interval;
    const std::size_t owner = delta_.assignment(j).processor;
    const Real cycleBefore = delta_.cycle(j);
    const Real latencyBefore = metrics.latency;

    if (victim.length() < 2 || available_.empty()) return std::nullopt;
    const std::size_t a1 = available_[0];
    const bool haveSecond = available_.size() > 1;
    const std::size_t a2 = haveSecond ? available_[1] : a1;

    std::optional<Candidate> best;
    const auto consider = [&](const Candidate& replacement) {
      Candidate c = replacement;
      scoreCandidate(j, c, cycleBefore, latencyBefore);
      if (c.score == kInfinity) return;  // inadmissible
      if (!best || c.betterThan(*best)) best = c;
    };
    const auto twoWay = [](Interval head, std::size_t pa, Interval tail, std::size_t pb) {
      Candidate c;
      c.parts[0] = Assignment{head, pa};
      c.parts[1] = Assignment{tail, pb};
      c.count = 2;
      return c;
    };

    const bool threeWay = config_.arity == SplitArity::kThree && victim.length() >= 3 &&
                          haveSecond;
    if (threeWay) {
      // All cut pairs, all 6 assignments of the parts to {owner, a1, a2}.
      const std::size_t procs[3] = {owner, a1, a2};
      for (std::size_t q1 = victim.first; q1 + 1 <= victim.last; ++q1) {
        for (std::size_t q2 = q1 + 1; q2 <= victim.last - 1; ++q2) {
          const Interval parts[3] = {{victim.first, q1}, {q1 + 1, q2}, {q2 + 1, victim.last}};
          std::size_t perm[3] = {0, 1, 2};
          do {
            Candidate c;
            c.parts[0] = Assignment{parts[0], procs[perm[0]]};
            c.parts[1] = Assignment{parts[1], procs[perm[1]]};
            c.parts[2] = Assignment{parts[2], procs[perm[2]]};
            c.count = 3;
            consider(c);
          } while (std::next_permutation(std::begin(perm), std::end(perm)));
        }
      }
      return best;
    }

    // Two-way splits. For 3-Explo on a 2-stage victim the paper's 3-way
    // split degenerates; we try every ordered processor pair drawn from
    // {owner, a1, a2} (documented in DESIGN.md). Plain Sp-* heuristics use
    // {owner, a1} in both orders.
    std::vector<std::pair<std::size_t, std::size_t>> pairs = {{owner, a1}, {a1, owner}};
    if (config_.arity == SplitArity::kThree && haveSecond && victim.length() == 2) {
      pairs.push_back({owner, a2});
      pairs.push_back({a2, owner});
      pairs.push_back({a1, a2});
      pairs.push_back({a2, a1});
    }
    for (std::size_t q = victim.first; q + 1 <= victim.last; ++q) {
      const Interval head{victim.first, q};
      const Interval tail{q + 1, victim.last};
      for (const auto& [pa, pb] : pairs) {
        consider(twoWay(head, pa, tail, pb));
      }
    }
    return best;
  }

  /// Scores one replacement of interval j in place; leaves score == kInfinity
  /// when the candidate is inadmissible (does not strictly improve the
  /// bottleneck cycle, or violates the latency cap). Dispatches between the
  /// delta kernel and the legacy rebuild pattern — both produce bit-identical
  /// scores (the phase times come from the same Evaluator::breakdown fill).
  void scoreCandidate(std::size_t j, Candidate& c, Real cycleBefore, Real latencyBefore) {
    Metrics m;
    Real maxCycle = 0;
    Real minGain = kInfinity;
    Real maxGain = 0;
    if (config_.useDeltaKernel) {
      if (!delta_.replaceInterval(j, c.parts.data(), c.count)) return;
      m = delta_.metrics();
      for (std::size_t r = 0; r < c.count; ++r) {
        const Real cycle = delta_.cycle(j + r);
        maxCycle = std::max(maxCycle, cycle);
        const Real gain = cycleBefore - cycle;
        minGain = std::min(minGain, gain);
        maxGain = std::max(maxGain, gain);
      }
      delta_.undo();
    } else {
      // Legacy cost profile: materialize, copy-edit (re-checking ordering),
      // full evaluate, then per-part breakdowns in context.
      IntervalMapping after = delta_.mapping();
      after.replaceInterval(j, std::vector<Assignment>(c.parts.begin(),
                                                       c.parts.begin() + static_cast<std::ptrdiff_t>(c.count)));
      m = eval_.evaluate(after);
      for (std::size_t r = 0; r < c.count; ++r) {
        const Real cycle = eval_.intervalCycle(after, j + r);
        maxCycle = std::max(maxCycle, cycle);
        const Real gain = cycleBefore - cycle;
        minGain = std::min(minGain, gain);
        maxGain = std::max(maxGain, gain);
      }
    }
    c.latencyAfter = m.latency;
    c.maxNewCycle = maxCycle;

    const bool improves = definitelyLess(maxCycle, cycleBefore);
    const bool fitsLatency = lessOrNearlyEqual(m.latency, config_.latencyCap);
    if (!improves || !fitsLatency) return;  // score stays kInfinity

    if (config_.rule == SelectionRule::kMonoMax) {
      c.score = maxCycle;
    } else {
      // max_i dLatency / dPeriod(i); all gains are > 0 thanks to `improves`.
      const Real dLat = m.latency - latencyBefore;
      c.score = dLat >= 0 ? dLat / minGain : dLat / maxGain;
    }
  }

  void applyCandidate(std::size_t j, const Candidate& candidate) {
    const std::size_t owner = delta_.assignment(j).processor;
    delta_.replaceInterval(j, candidate.parts.data(), candidate.count);
    delta_.commit();

    bool ownerStillUsed = false;
    for (std::size_t r = 0; r < candidate.count; ++r) {
      const Assignment& a = candidate.parts[r];
      if (a.processor == owner) {
        ownerStillUsed = true;
      } else {
        removeValue(available_, a.processor);
      }
    }
    if (!ownerStillUsed) {
      // Degenerate 3-Explo split that moved both parts off the owner: the
      // owner returns to the pool at its speed-sorted position.
      const auto& plat = eval_.platform();
      const auto pos = std::find_if(
          available_.begin(), available_.end(), [&](std::size_t u) {
            return plat.speed(u) < plat.speed(owner) ||
                   (plat.speed(u) == plat.speed(owner) && u > owner);
          });
      available_.insert(pos, owner);
    }
  }

  const Evaluator& eval_;
  EngineConfig config_;
  core::EvalWorkspace workspace_;
  core::DeltaEvaluator delta_;
  std::vector<std::size_t> available_;  // unused processors, fastest first
};

}  // namespace

EngineResult runSplittingEngine(const Evaluator& eval, const EngineConfig& config) {
  return Engine(eval, config).run();
}

}  // namespace pipesched::heuristics
