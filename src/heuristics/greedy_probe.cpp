#include "pipesched/heuristics/greedy_probe.hpp"

#include <algorithm>
#include <vector>

namespace pipesched::heuristics {

namespace {

void requireCommHomogeneous(const Evaluator& eval) {
  if (!eval.platform().isCommHomogeneous()) {
    throw ModelError("greedyProbe: requires a communication-homogeneous platform");
  }
}

/// Probe core writing into a caller-provided buffer, so the bisection loops
/// below run allocation-free. `order` is the platform's fastest-first
/// processor list (hoisted out of the loops — it does not depend on the
/// target).
bool greedyProbeInto(const Evaluator& eval, Real periodTarget,
                     const std::vector<std::size_t>& order,
                     std::vector<core::Assignment>& parts) {
  const std::size_t n = eval.pipeline().stageCount();
  parts.clear();
  std::size_t next = 0;  // first unplaced stage
  for (std::size_t rank = 0; rank < order.size() && next < n; ++rank) {
    const std::size_t proc = order[rank];
    // Longest prefix [next, e] whose cycle stays within the target. The cycle
    // is not monotone in e (delta_e varies), so we greedily extend while the
    // *current* end keeps the cycle admissible — the standard first-violation
    // rule, documented as approximate.
    if (!lessOrNearlyEqual(eval.cycleTime({next, next}, proc), periodTarget)) {
      // Even a singleton does not fit on the fastest remaining processor;
      // slower ones cannot do better (same comms, less speed).
      return false;
    }
    std::size_t end = next;
    while (end + 1 < n && lessOrNearlyEqual(eval.cycleTime({next, end + 1}, proc), periodTarget)) {
      ++end;
    }
    parts.push_back(core::Assignment{{next, end}, proc});
    next = end + 1;
  }
  return next >= n;  // false: ran out of processors
}

}  // namespace

std::optional<IntervalMapping> greedyProbe(const Evaluator& eval, Real periodTarget) {
  requireCommHomogeneous(eval);
  const std::vector<std::size_t> order = eval.platform().processorsBySpeed();
  std::vector<core::Assignment> parts;
  if (!greedyProbeInto(eval, periodTarget, order, parts)) return std::nullopt;
  return IntervalMapping(std::move(parts));
}

Real greedyProbeMinPeriod(const Evaluator& eval, const GreedyProbeOptions& options) {
  requireCommHomogeneous(eval);
  const std::vector<std::size_t> order = eval.platform().processorsBySpeed();
  std::vector<core::Assignment> scratch;
  scratch.reserve(order.size());
  const auto feasible = [&](Real target) {
    return greedyProbeInto(eval, target, order, scratch);
  };

  // Upper bound: the single-interval mapping on the fastest processor always
  // exists, so its period is feasible for the probe as well.
  const IntervalMapping lemma1 = eval.optimalLatencyMapping();
  Real hi = eval.period(lemma1);
  if (!feasible(hi)) {
    // Defensive: the probe at `hi` places everything on the fastest processor
    // by construction, but keep a widening loop in case of tolerance trouble.
    for (int i = 0; i < 8 && !feasible(hi); ++i) hi *= 2;
  }
  Real lo = 0;
  for (int iter = 0; iter < options.bisectionIterations && definitelyLess(lo, hi); ++iter) {
    const Real mid = Real(0.5) * (lo + hi);
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

Result greedyProbeHeuristic(const Evaluator& eval, Objective objective, Real threshold,
                            const GreedyProbeOptions& options) {
  Result result;
  if (objective == Objective::kMinLatencyForPeriod) {
    if (auto mapping = greedyProbe(eval, threshold)) {
      result.mapping = std::move(*mapping);
      result.metrics = eval.evaluate(result.mapping);
      result.success = lessOrNearlyEqual(result.metrics.period, threshold);
    } else {
      // Report the Lemma-1 solution so callers always get a valid mapping.
      result.mapping = eval.optimalLatencyMapping();
      result.metrics = eval.evaluate(result.mapping);
      result.success = false;
    }
    return result;
  }

  // kMinPeriodForLatency: find the smallest probe period whose mapping also
  // meets the latency bound. The probe latency is not monotone in the period
  // target, so after the search double-check the bound and fall back to the
  // Lemma-1 solution (the latency optimum) when the bound is tight.
  // The search loop runs through the reusable probe buffer and the raw-parts
  // evaluate overload (metrics without materializing a mapping per
  // iteration).
  requireCommHomogeneous(eval);
  const std::vector<std::size_t> order = eval.platform().processorsBySpeed();
  std::vector<core::Assignment> scratch;
  scratch.reserve(order.size());

  const IntervalMapping lemma1 = eval.optimalLatencyMapping();
  const Metrics lemma1Metrics = eval.evaluate(lemma1);
  Real lo = 0;
  Real hi = lemma1Metrics.period;
  std::vector<core::Assignment> bestParts;
  bool haveBest = false;
  Metrics bestMetrics;
  for (int iter = 0; iter < options.bisectionIterations && definitelyLess(lo, hi); ++iter) {
    const Real mid = Real(0.5) * (lo + hi);
    if (!greedyProbeInto(eval, mid, order, scratch)) {
      lo = mid;
      continue;
    }
    const Metrics m = eval.evaluate(scratch);
    if (lessOrNearlyEqual(m.latency, threshold)) {
      if (!haveBest || m.period < bestMetrics.period) {
        bestParts.assign(scratch.begin(), scratch.end());
        bestMetrics = m;
        haveBest = true;
      }
      hi = mid;
    } else {
      lo = mid;  // need a looser period to shorten the latency
    }
  }
  if (!haveBest && lessOrNearlyEqual(lemma1Metrics.latency, threshold)) {
    bestParts.assign(lemma1.assignments().begin(), lemma1.assignments().end());
    bestMetrics = lemma1Metrics;
    haveBest = true;
  }
  if (haveBest) {
    result.mapping = IntervalMapping::fromValidated(std::move(bestParts));
    result.metrics = bestMetrics;
    result.success = true;
  } else {
    result.mapping = lemma1;
    result.metrics = lemma1Metrics;
    result.success = false;
  }
  return result;
}

}  // namespace pipesched::heuristics
