#include "pipesched/heuristics/local_search.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "pipesched/core/delta_evaluation.hpp"

namespace pipesched::heuristics {

namespace {

/// Scores used to rank candidate mappings: feasibility, then the optimized
/// criterion, then the constrained criterion as tie-breaker.
struct Score {
  bool feasible = false;
  Real primary = kInfinity;    ///< the optimized criterion
  Real secondary = kInfinity;  ///< the constrained criterion
};

Score scoreOf(const Metrics& m, Objective objective, Real threshold) {
  Score s;
  if (objective == Objective::kMinLatencyForPeriod) {
    s.feasible = lessOrNearlyEqual(m.period, threshold);
    s.primary = m.latency;
    s.secondary = m.period;
  } else {
    s.feasible = lessOrNearlyEqual(m.latency, threshold);
    s.primary = m.period;
    s.secondary = m.latency;
  }
  return s;
}

/// Strictly-better-than comparison. Feasible beats infeasible; among equals,
/// an infeasible pair compares on the constraint violation (secondary) first
/// so the search walks toward feasibility before optimizing.
bool better(const Score& a, const Score& b) {
  if (a.feasible != b.feasible) return a.feasible;
  if (!a.feasible) {
    if (definitelyLess(a.secondary, b.secondary)) return true;
    if (definitelyLess(b.secondary, a.secondary)) return false;
    return definitelyLess(a.primary, b.primary);
  }
  if (definitelyLess(a.primary, b.primary)) return true;
  if (definitelyLess(b.primary, a.primary)) return false;
  return definitelyLess(a.secondary, b.secondary);
}

// ---------------------------------------------------------------------------
// Delta path: candidates are scored through the incremental kernel —
// apply / metrics / undo, O(touched-intervals) per candidate, no allocation.
// The used-processor bitmap lives in the workspace and is maintained
// incrementally across accepted moves (no per-round rebuild).

LocalSearchResult localSearchDelta(const Evaluator& eval, const IntervalMapping& seed,
                                   Objective objective, Real threshold,
                                   const LocalSearchOptions& options) {
  using core::Move;
  const std::size_t p = eval.platform().processorCount();

  core::EvalWorkspace workspace;
  workspace.reserve(p, p);
  core::DeltaEvaluator delta(eval, workspace);
  delta.load(seed);

  Metrics currentMetrics = delta.metrics();
  Score currentScore = scoreOf(currentMetrics, objective, threshold);

  LocalSearchResult result;
  for (std::size_t round = 0; round < options.maxRounds; ++round) {
    Move bestMove;
    Metrics bestMetrics;
    Score bestScore = currentScore;
    bool improved = false;

    // The kernel itself rejects inapplicable moves (too-short intervals,
    // used processors), mirroring the legacy generator's guards, so the
    // enumeration below stays a plain loop nest in the legacy order. Every
    // candidate is scored by peek() — no state change, no undo; apply/undo
    // remains as a defensive fallback only.
    const auto scored = [&](const Metrics& m, const Move& move) {
      const Score s = scoreOf(m, objective, threshold);
      if (better(s, bestScore)) {
        bestScore = s;
        bestMetrics = m;
        bestMove = move;
        improved = true;
      }
    };
    const auto consider = [&](const Move& move) {
      if (const std::optional<Metrics> peeked = delta.peek(move)) {
        scored(*peeked, move);
        return;
      }
      if (!delta.apply(move)) return;
      scored(delta.metrics(), move);
      delta.undo();
    };

    const std::size_t m = delta.intervalCount();

    // Move class 1: shift the cut between intervals j and j+1 by one stage.
    for (std::size_t j = 0; j + 1 < m; ++j) {
      consider(Move::shiftLeft(j));   // give left's last stage to right
      consider(Move::shiftRight(j));  // take right's first stage into left
    }

    // Move class 2: swap the processors of intervals j and k.
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t k = j + 1; k < m; ++k) consider(Move::swapProcessors(j, k));
    }

    // Move class 3: reassign interval j to an unused processor.
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t u = 0; u < p; ++u) consider(Move::reassign(j, u));
    }

    // Move class 4: merge adjacent intervals onto either processor.
    if (options.mergeMoves) {
      for (std::size_t j = 0; j + 1 < m; ++j) {
        consider(Move::merge(j, /*keepLeft=*/true));
        consider(Move::merge(j, /*keepLeft=*/false));
      }
    }

    // Move class 5: split interval j at stage q, tail to an unused processor.
    if (options.splitMoves && m < p) {
      for (std::size_t j = 0; j < m; ++j) {
        const core::Interval iv = delta.assignment(j).interval;
        for (std::size_t q = iv.first; q < iv.last; ++q) {
          for (std::size_t u = 0; u < p; ++u) consider(Move::split(j, q, u));
        }
      }
    }

    if (!improved) break;
    delta.apply(bestMove);
    delta.commit();
    currentMetrics = bestMetrics;
    currentScore = bestScore;
    ++result.roundsAccepted;
  }

  result.mapping = delta.mapping();
  result.metrics = currentMetrics;
  result.feasible = currentScore.feasible;
  core::recordDeltaKernelStats(delta.stats());
  return result;
}

// ---------------------------------------------------------------------------
// Rebuild path: the historical copy-edit-rebuild + full-evaluate pattern,
// kept verbatim as the differential reference for the delta kernel and as
// the before/after baseline in bench/perf_eval. Candidate enumeration order
// must stay in lockstep with localSearchDelta above — the equivalence tests
// compare the two bit for bit.

/// Bundles the evaluation context shared by the move generators.
struct SearchContext {
  const core::Evaluator& eval;
  Objective objective;
  Real threshold;

  Score score(const IntervalMapping& mapping, Metrics* metricsOut = nullptr) const {
    const Metrics m = eval.evaluate(mapping);
    if (metricsOut != nullptr) *metricsOut = m;
    return scoreOf(m, objective, threshold);
  }
};

std::vector<bool> usedProcessors(const IntervalMapping& mapping, std::size_t p) {
  std::vector<bool> used(p, false);
  for (const core::Assignment& a : mapping.assignments()) used[a.processor] = true;
  return used;
}

/// Applies `edit` to a copy of `mapping`'s assignment list and rebuilds.
template <typename Edit>
IntervalMapping edited(const IntervalMapping& mapping, Edit&& edit) {
  std::vector<core::Assignment> parts = mapping.assignments();
  edit(parts);
  return IntervalMapping(std::move(parts));
}

LocalSearchResult localSearchRebuild(const Evaluator& eval, const IntervalMapping& seed,
                                     Objective objective, Real threshold,
                                     const LocalSearchOptions& options) {
  const std::size_t p = eval.platform().processorCount();
  const SearchContext ctx{eval, objective, threshold};

  IntervalMapping current = seed;
  Metrics currentMetrics;
  Score currentScore = ctx.score(current, &currentMetrics);

  LocalSearchResult result;
  for (std::size_t round = 0; round < options.maxRounds; ++round) {
    IntervalMapping bestNeighbor;
    Metrics bestMetrics;
    Score bestScore = currentScore;
    bool improved = false;

    const auto consider = [&](IntervalMapping neighbor) {
      Metrics m;
      const Score s = ctx.score(neighbor, &m);
      if (better(s, bestScore)) {
        bestScore = s;
        bestMetrics = m;
        bestNeighbor = std::move(neighbor);
        improved = true;
      }
    };

    const std::size_t m = current.intervalCount();
    const std::vector<bool> used = usedProcessors(current, p);

    // Move class 1: shift the cut between intervals j and j+1 by one stage.
    for (std::size_t j = 0; j + 1 < m; ++j) {
      const core::Interval left = current.interval(j);
      const core::Interval right = current.interval(j + 1);
      if (left.length() > 1) {  // give left's last stage to right
        consider(edited(current, [&](auto& parts) {
          --parts[j].interval.last;
          --parts[j + 1].interval.first;
        }));
      }
      if (right.length() > 1) {  // take right's first stage into left
        consider(edited(current, [&](auto& parts) {
          ++parts[j].interval.last;
          ++parts[j + 1].interval.first;
        }));
      }
    }

    // Move class 2: swap the processors of intervals j and k.
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t k = j + 1; k < m; ++k) {
        consider(edited(current, [&](auto& parts) {
          std::swap(parts[j].processor, parts[k].processor);
        }));
      }
    }

    // Move class 3: reassign interval j to an unused processor.
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t u = 0; u < p; ++u) {
        if (used[u]) continue;
        consider(edited(current, [&](auto& parts) { parts[j].processor = u; }));
      }
    }

    // Move class 4: merge adjacent intervals onto either processor.
    if (options.mergeMoves) {
      for (std::size_t j = 0; j + 1 < m; ++j) {
        for (const bool keepLeft : {true, false}) {
          consider(edited(current, [&](auto& parts) {
            parts[j].interval.last = parts[j + 1].interval.last;
            if (!keepLeft) parts[j].processor = parts[j + 1].processor;
            parts.erase(parts.begin() + static_cast<std::ptrdiff_t>(j) + 1);
          }));
        }
      }
    }

    // Move class 5: split interval j at stage q, tail to an unused processor.
    if (options.splitMoves && m < p) {
      for (std::size_t j = 0; j < m; ++j) {
        const core::Interval iv = current.interval(j);
        for (std::size_t q = iv.first; q < iv.last; ++q) {
          for (std::size_t u = 0; u < p; ++u) {
            if (used[u]) continue;
            consider(edited(current, [&](auto& parts) {
              core::Assignment tail;
              tail.interval = {q + 1, iv.last};
              tail.processor = u;
              parts[j].interval.last = q;
              parts.insert(parts.begin() + static_cast<std::ptrdiff_t>(j) + 1, tail);
            }));
          }
        }
      }
    }

    if (!improved) break;
    current = std::move(bestNeighbor);
    currentMetrics = bestMetrics;
    currentScore = bestScore;
    ++result.roundsAccepted;
  }

  result.mapping = std::move(current);
  result.metrics = currentMetrics;
  result.feasible = currentScore.feasible;
  return result;
}

}  // namespace

LocalSearchResult localSearch(const Evaluator& eval, const IntervalMapping& seed,
                              Objective objective, Real threshold,
                              const LocalSearchOptions& options) {
  const std::size_t n = eval.pipeline().stageCount();
  const std::size_t p = eval.platform().processorCount();
  seed.validate(n, p);
  return options.useDeltaKernel ? localSearchDelta(eval, seed, objective, threshold, options)
                                : localSearchRebuild(eval, seed, objective, threshold, options);
}

Result refineWithLocalSearch(const Evaluator& eval, const MappingHeuristic& heuristic,
                             Real threshold, const LocalSearchOptions& options) {
  const Result seeded = heuristic.run(eval, threshold);
  const LocalSearchResult refined =
      localSearch(eval, seeded.mapping, heuristic.objective(), threshold, options);
  Result out;
  out.mapping = refined.mapping;
  out.metrics = refined.metrics;
  out.splits = seeded.splits;
  out.success = refined.feasible;
  return out;
}

}  // namespace pipesched::heuristics
