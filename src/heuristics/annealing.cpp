#include "pipesched/heuristics/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "pipesched/workload/rng.hpp"

namespace pipesched::heuristics {

namespace {

using workload::Rng;

struct EnergyModel {
  Objective objective;
  Real threshold;
  Real penalty;  ///< absolute penalty weight per unit of violation

  [[nodiscard]] Real energy(const Metrics& m) const {
    const Real primary =
        objective == Objective::kMinLatencyForPeriod ? m.latency : m.period;
    const Real constrained =
        objective == Objective::kMinLatencyForPeriod ? m.period : m.latency;
    return primary + penalty * std::max(Real(0), constrained - threshold);
  }

  [[nodiscard]] bool feasible(const Metrics& m) const {
    const Real constrained =
        objective == Objective::kMinLatencyForPeriod ? m.period : m.latency;
    return lessOrNearlyEqual(constrained, threshold);
  }
};

/// Proposes one random neighbor, or nullopt when the sampled move does not
/// apply to the current state (caller just samples again).
std::optional<IntervalMapping> propose(const IntervalMapping& current, std::size_t p,
                                       Rng& rng) {
  const std::size_t m = current.intervalCount();
  std::vector<core::Assignment> parts = current.assignments();

  std::vector<bool> used(p, false);
  for (const core::Assignment& a : parts) used[a.processor] = true;
  std::vector<std::size_t> unused;
  for (std::size_t u = 0; u < p; ++u) {
    if (!used[u]) unused.push_back(u);
  }

  switch (rng.uniformInt(0, 4)) {
    case 0: {  // shift a cut
      if (m < 2) return std::nullopt;
      const std::size_t j = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(m) - 2));
      const bool leftGives = rng.uniformInt(0, 1) == 0;
      if (leftGives) {
        if (parts[j].interval.length() < 2) return std::nullopt;
        --parts[j].interval.last;
        --parts[j + 1].interval.first;
      } else {
        if (parts[j + 1].interval.length() < 2) return std::nullopt;
        ++parts[j].interval.last;
        ++parts[j + 1].interval.first;
      }
      break;
    }
    case 1: {  // swap two processors
      if (m < 2) return std::nullopt;
      const std::size_t j = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(m) - 1));
      const std::size_t k = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(m) - 1));
      if (j == k) return std::nullopt;
      std::swap(parts[j].processor, parts[k].processor);
      break;
    }
    case 2: {  // reassign to an unused processor
      if (unused.empty()) return std::nullopt;
      const std::size_t j = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(m) - 1));
      const std::size_t u =
          unused[static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(unused.size()) - 1))];
      parts[j].processor = u;
      break;
    }
    case 3: {  // merge adjacent intervals
      if (m < 2) return std::nullopt;
      const std::size_t j = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(m) - 2));
      const bool keepLeft = rng.uniformInt(0, 1) == 0;
      parts[j].interval.last = parts[j + 1].interval.last;
      if (!keepLeft) parts[j].processor = parts[j + 1].processor;
      parts.erase(parts.begin() + static_cast<std::ptrdiff_t>(j) + 1);
      break;
    }
    default: {  // split an interval
      if (unused.empty()) return std::nullopt;
      const std::size_t j = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(m) - 1));
      const core::Interval iv = parts[j].interval;
      if (iv.length() < 2) return std::nullopt;
      const std::size_t q = static_cast<std::size_t>(
          rng.uniformInt(static_cast<std::int64_t>(iv.first), static_cast<std::int64_t>(iv.last) - 1));
      const std::size_t u =
          unused[static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(unused.size()) - 1))];
      core::Assignment tail;
      tail.interval = {q + 1, iv.last};
      tail.processor = u;
      parts[j].interval.last = q;
      parts.insert(parts.begin() + static_cast<std::ptrdiff_t>(j) + 1, tail);
      break;
    }
  }
  return IntervalMapping(std::move(parts));
}

}  // namespace

AnnealingResult anneal(const Evaluator& eval, const IntervalMapping& seedMapping,
                       Objective objective, Real threshold, const AnnealingOptions& options) {
  const std::size_t n = eval.pipeline().stageCount();
  const std::size_t p = eval.platform().processorCount();
  seedMapping.validate(n, p);
  if (options.moves == 0) throw ModelError("anneal: moves must be >= 1");

  Metrics currentMetrics = eval.evaluate(seedMapping);
  // Scale both the penalty and the temperature schedule to the seed energy so
  // the options are instance-size independent.
  const Real scale = std::max(Real(1), std::max(currentMetrics.period, currentMetrics.latency));
  const EnergyModel model{objective, threshold, options.penaltyWeight * scale};

  IntervalMapping current = seedMapping;
  Real currentEnergy = model.energy(currentMetrics);

  AnnealingResult best;
  best.mapping = current;
  best.metrics = currentMetrics;
  best.feasible = model.feasible(currentMetrics);
  Real bestEnergy = currentEnergy;

  const Real t0 = std::max(kTimeEps, options.initialTemperatureFraction * scale);
  const Real t1 = std::max(kTimeEps * kTimeEps, t0 * options.finalTemperatureFraction);
  const Real decay =
      std::pow(t1 / t0, Real(1) / static_cast<Real>(std::max<std::size_t>(1, options.moves - 1)));

  Rng rng(options.seed);
  Real temperature = t0;
  for (std::size_t step = 0; step < options.moves; ++step, temperature *= decay) {
    std::optional<IntervalMapping> neighbor = propose(current, p, rng);
    if (!neighbor) continue;
    const Metrics m = eval.evaluate(*neighbor);
    const Real e = model.energy(m);
    const Real delta = e - currentEnergy;
    if (delta <= 0 || rng.nextReal() < std::exp(-delta / temperature)) {
      current = std::move(*neighbor);
      currentMetrics = m;
      currentEnergy = e;
      ++best.accepted;
      const bool feas = model.feasible(m);
      // Track the best state: a feasible one always beats an infeasible one;
      // otherwise compare energies.
      if ((feas && !best.feasible) ||
          (feas == best.feasible && e < bestEnergy)) {
        best.mapping = current;
        best.metrics = m;
        best.feasible = feas;
        bestEnergy = e;
      }
    }
  }
  return best;
}

}  // namespace pipesched::heuristics
