#include "pipesched/heuristics/annealing.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <optional>
#include <utility>
#include <vector>

#include "pipesched/core/delta_evaluation.hpp"
#include "pipesched/workload/rng.hpp"

namespace pipesched::heuristics {

namespace {

using workload::Rng;

struct EnergyModel {
  Objective objective;
  Real threshold;
  Real penalty;  ///< absolute penalty weight per unit of violation

  [[nodiscard]] Real energy(const Metrics& m) const {
    const Real primary =
        objective == Objective::kMinLatencyForPeriod ? m.latency : m.period;
    const Real constrained =
        objective == Objective::kMinLatencyForPeriod ? m.period : m.latency;
    return primary + penalty * std::max(Real(0), constrained - threshold);
  }

  [[nodiscard]] bool feasible(const Metrics& m) const {
    const Real constrained =
        objective == Objective::kMinLatencyForPeriod ? m.period : m.latency;
    return lessOrNearlyEqual(constrained, threshold);
  }
};

/// Shared annealing schedule derived from the seed metrics.
struct Schedule {
  EnergyModel model;
  Real t0;
  Real decay;

  Schedule(Objective objective, Real threshold, const Metrics& seedMetrics,
           const AnnealingOptions& options)
      : model{objective, threshold, Real(0)} {
    // Scale both the penalty and the temperature schedule to the seed energy
    // so the options are instance-size independent.
    const Real scale =
        std::max(Real(1), std::max(seedMetrics.period, seedMetrics.latency));
    model.penalty = options.penaltyWeight * scale;
    t0 = std::max(kTimeEps, options.initialTemperatureFraction * scale);
    const Real t1 = std::max(kTimeEps * kTimeEps, t0 * options.finalTemperatureFraction);
    decay = std::pow(t1 / t0,
                     Real(1) / static_cast<Real>(std::max<std::size_t>(1, options.moves - 1)));
  }
};

// ---------------------------------------------------------------------------
// Delta path. proposeMove() consumes the SAME random sequence as the legacy
// propose() below — guard order and draw order are in lockstep, so both
// paths walk identical trajectories (the equivalence tests pin this) while
// this one applies moves in place through the kernel.

std::optional<core::Move> proposeMove(const core::DeltaEvaluator& delta, std::size_t p,
                                      std::vector<std::size_t>& unusedScratch, Rng& rng) {
  using core::Move;
  const std::size_t m = delta.intervalCount();
  // Only the reassign and split cases read the unused-processor list; build
  // it lazily there (it consumes no draws, so the random sequence stays in
  // lockstep with the legacy path, which builds it unconditionally).
  const auto refillUnused = [&] {
    unusedScratch.clear();
    for (std::size_t u = 0; u < p; ++u) {
      if (!delta.processorUsed(u)) unusedScratch.push_back(u);
    }
  };

  switch (rng.uniformInt(0, 4)) {
    case 0: {  // shift a cut
      if (m < 2) return std::nullopt;
      const std::size_t j = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(m) - 2));
      const bool leftGives = rng.uniformInt(0, 1) == 0;
      if (leftGives) {
        if (delta.assignment(j).interval.length() < 2) return std::nullopt;
        return Move::shiftLeft(j);
      }
      if (delta.assignment(j + 1).interval.length() < 2) return std::nullopt;
      return Move::shiftRight(j);
    }
    case 1: {  // swap two processors
      if (m < 2) return std::nullopt;
      const std::size_t j = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(m) - 1));
      const std::size_t k = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(m) - 1));
      if (j == k) return std::nullopt;
      return Move::swapProcessors(j, k);
    }
    case 2: {  // reassign to an unused processor
      refillUnused();
      if (unusedScratch.empty()) return std::nullopt;
      const std::size_t j = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(m) - 1));
      const std::size_t u = unusedScratch[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(unusedScratch.size()) - 1))];
      return Move::reassign(j, u);
    }
    case 3: {  // merge adjacent intervals
      if (m < 2) return std::nullopt;
      const std::size_t j = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(m) - 2));
      const bool keepLeft = rng.uniformInt(0, 1) == 0;
      return Move::merge(j, keepLeft);
    }
    default: {  // split an interval
      refillUnused();
      if (unusedScratch.empty()) return std::nullopt;
      const std::size_t j = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(m) - 1));
      const core::Interval iv = delta.assignment(j).interval;
      if (iv.length() < 2) return std::nullopt;
      const std::size_t q = static_cast<std::size_t>(
          rng.uniformInt(static_cast<std::int64_t>(iv.first), static_cast<std::int64_t>(iv.last) - 1));
      const std::size_t u = unusedScratch[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(unusedScratch.size()) - 1))];
      return Move::split(j, q, u);
    }
  }
}

AnnealingResult annealDelta(const Evaluator& eval, const IntervalMapping& seedMapping,
                            Objective objective, Real threshold,
                            const AnnealingOptions& options) {
  const std::size_t p = eval.platform().processorCount();

  core::EvalWorkspace workspace;
  workspace.reserve(p, p);
  core::DeltaEvaluator delta(eval, workspace);
  delta.load(seedMapping);

  Metrics currentMetrics = delta.metrics();
  const Schedule schedule(objective, threshold, currentMetrics, options);
  const EnergyModel& model = schedule.model;
  Real currentEnergy = model.energy(currentMetrics);

  // The best state is tracked as a raw parts copy: the buffer's capacity is
  // reused across improvements, so the steady state allocates nothing.
  std::vector<core::Assignment> bestParts = delta.assignments();
  AnnealingResult best;
  best.metrics = currentMetrics;
  best.feasible = model.feasible(currentMetrics);
  Real bestEnergy = currentEnergy;

  std::vector<std::size_t> unusedScratch;
  unusedScratch.reserve(p);

  Rng rng(options.seed);
  Real temperature = schedule.t0;
  for (std::size_t step = 0; step < options.moves; ++step, temperature *= schedule.decay) {
    const std::optional<core::Move> move = proposeMove(delta, p, unusedScratch, rng);
    if (!move) continue;
    // Proposals are scored by peek() without touching the scratch state;
    // apply/undo remains as a defensive fallback. proposeMove's guards are
    // exhaustive, so neither can fail — a failure here would desynchronize
    // the random sequence from the legacy path.
    Metrics m;
    bool pendingApply = false;
    if (const std::optional<Metrics> peeked = delta.peek(*move)) {
      m = *peeked;
    } else {
      [[maybe_unused]] const bool applied = delta.apply(*move);
      assert(applied);
      m = delta.metrics();
      pendingApply = true;
    }
    const Real e = model.energy(m);
    const Real diff = e - currentEnergy;
    if (diff <= 0 || rng.nextReal() < std::exp(-diff / temperature)) {
      if (!pendingApply) {
        [[maybe_unused]] const bool applied = delta.apply(*move);
        assert(applied);
      }
      delta.commit();
      currentMetrics = m;
      currentEnergy = e;
      ++best.accepted;
      const bool feas = model.feasible(m);
      // Track the best state: a feasible one always beats an infeasible one;
      // otherwise compare energies.
      if ((feas && !best.feasible) || (feas == best.feasible && e < bestEnergy)) {
        bestParts.assign(delta.assignments().begin(), delta.assignments().end());
        best.metrics = m;
        best.feasible = feas;
        bestEnergy = e;
      }
    } else if (pendingApply) {
      delta.undo();
    }
  }
  best.mapping = IntervalMapping::fromValidated(std::move(bestParts));
  core::recordDeltaKernelStats(delta.stats());
  return best;
}

// ---------------------------------------------------------------------------
// Rebuild path: the historical implementation, kept verbatim as the
// differential reference and the bench baseline. Draw order must stay in
// lockstep with proposeMove() above.

/// Proposes one random neighbor, or nullopt when the sampled move does not
/// apply to the current state (caller just samples again).
std::optional<IntervalMapping> propose(const IntervalMapping& current, std::size_t p,
                                       Rng& rng) {
  const std::size_t m = current.intervalCount();
  std::vector<core::Assignment> parts = current.assignments();

  std::vector<bool> used(p, false);
  for (const core::Assignment& a : parts) used[a.processor] = true;
  std::vector<std::size_t> unused;
  for (std::size_t u = 0; u < p; ++u) {
    if (!used[u]) unused.push_back(u);
  }

  switch (rng.uniformInt(0, 4)) {
    case 0: {  // shift a cut
      if (m < 2) return std::nullopt;
      const std::size_t j = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(m) - 2));
      const bool leftGives = rng.uniformInt(0, 1) == 0;
      if (leftGives) {
        if (parts[j].interval.length() < 2) return std::nullopt;
        --parts[j].interval.last;
        --parts[j + 1].interval.first;
      } else {
        if (parts[j + 1].interval.length() < 2) return std::nullopt;
        ++parts[j].interval.last;
        ++parts[j + 1].interval.first;
      }
      break;
    }
    case 1: {  // swap two processors
      if (m < 2) return std::nullopt;
      const std::size_t j = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(m) - 1));
      const std::size_t k = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(m) - 1));
      if (j == k) return std::nullopt;
      std::swap(parts[j].processor, parts[k].processor);
      break;
    }
    case 2: {  // reassign to an unused processor
      if (unused.empty()) return std::nullopt;
      const std::size_t j = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(m) - 1));
      const std::size_t u =
          unused[static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(unused.size()) - 1))];
      parts[j].processor = u;
      break;
    }
    case 3: {  // merge adjacent intervals
      if (m < 2) return std::nullopt;
      const std::size_t j = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(m) - 2));
      const bool keepLeft = rng.uniformInt(0, 1) == 0;
      parts[j].interval.last = parts[j + 1].interval.last;
      if (!keepLeft) parts[j].processor = parts[j + 1].processor;
      parts.erase(parts.begin() + static_cast<std::ptrdiff_t>(j) + 1);
      break;
    }
    default: {  // split an interval
      if (unused.empty()) return std::nullopt;
      const std::size_t j = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(m) - 1));
      const core::Interval iv = parts[j].interval;
      if (iv.length() < 2) return std::nullopt;
      const std::size_t q = static_cast<std::size_t>(
          rng.uniformInt(static_cast<std::int64_t>(iv.first), static_cast<std::int64_t>(iv.last) - 1));
      const std::size_t u =
          unused[static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(unused.size()) - 1))];
      core::Assignment tail;
      tail.interval = {q + 1, iv.last};
      tail.processor = u;
      parts[j].interval.last = q;
      parts.insert(parts.begin() + static_cast<std::ptrdiff_t>(j) + 1, tail);
      break;
    }
  }
  return IntervalMapping(std::move(parts));
}

AnnealingResult annealRebuild(const Evaluator& eval, const IntervalMapping& seedMapping,
                              Objective objective, Real threshold,
                              const AnnealingOptions& options) {
  const std::size_t p = eval.platform().processorCount();

  Metrics currentMetrics = eval.evaluate(seedMapping);
  const Schedule schedule(objective, threshold, currentMetrics, options);
  const EnergyModel& model = schedule.model;

  IntervalMapping current = seedMapping;
  Real currentEnergy = model.energy(currentMetrics);

  AnnealingResult best;
  best.mapping = current;
  best.metrics = currentMetrics;
  best.feasible = model.feasible(currentMetrics);
  Real bestEnergy = currentEnergy;

  Rng rng(options.seed);
  Real temperature = schedule.t0;
  for (std::size_t step = 0; step < options.moves; ++step, temperature *= schedule.decay) {
    std::optional<IntervalMapping> neighbor = propose(current, p, rng);
    if (!neighbor) continue;
    const Metrics m = eval.evaluate(*neighbor);
    const Real e = model.energy(m);
    const Real diff = e - currentEnergy;
    if (diff <= 0 || rng.nextReal() < std::exp(-diff / temperature)) {
      current = std::move(*neighbor);
      currentMetrics = m;
      currentEnergy = e;
      ++best.accepted;
      const bool feas = model.feasible(m);
      // Track the best state: a feasible one always beats an infeasible one;
      // otherwise compare energies.
      if ((feas && !best.feasible) ||
          (feas == best.feasible && e < bestEnergy)) {
        best.mapping = current;
        best.metrics = m;
        best.feasible = feas;
        bestEnergy = e;
      }
    }
  }
  return best;
}

}  // namespace

AnnealingResult anneal(const Evaluator& eval, const IntervalMapping& seedMapping,
                       Objective objective, Real threshold, const AnnealingOptions& options) {
  const std::size_t n = eval.pipeline().stageCount();
  const std::size_t p = eval.platform().processorCount();
  seedMapping.validate(n, p);
  if (options.moves == 0) throw ModelError("anneal: moves must be >= 1");
  return options.useDeltaKernel ? annealDelta(eval, seedMapping, objective, threshold, options)
                                : annealRebuild(eval, seedMapping, objective, threshold, options);
}

}  // namespace pipesched::heuristics
