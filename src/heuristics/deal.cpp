#include "pipesched/heuristics/deal.hpp"

#include <algorithm>

namespace pipesched::heuristics {

namespace {

using core::Evaluator;
using core::Interval;
using core::Metrics;
using core::ReplicatedAssignment;
using core::ReplicatedMapping;

struct DealEngine {
  const Evaluator& eval;
  DealOptions options;
  std::optional<Real> target;
  ReplicatedMapping mapping;
  std::vector<std::size_t> available;
  std::size_t splits = 0;
  std::size_t replications = 0;

  DealEngine(const Evaluator& e, std::optional<Real> periodTarget, const DealOptions& opts)
      : eval(e), options(opts), target(periodTarget),
        mapping(ReplicatedMapping::fromIntervalMapping(e.optimalLatencyMapping())) {
    const std::size_t owner = mapping.assignment(0).processors.front();
    for (std::size_t u : e.platform().processorsBySpeed()) {
      if (u != owner) available.push_back(u);
    }
  }

  /// Best admissible 2-way split of (singleton-replica) interval j; returns
  /// the resulting max part-cycle, or nullopt.
  struct SplitCandidate {
    std::vector<ReplicatedAssignment> replacement;
    Real score = kInfinity;
  };

  std::optional<SplitCandidate> bestSplit(std::size_t j, Real bottleneckPeriod) const {
    const ReplicatedAssignment& victim = mapping.assignment(j);
    if (victim.processors.size() != 1 || victim.interval.length() < 2 || available.empty()) {
      return std::nullopt;
    }
    const std::size_t owner = victim.processors.front();
    const std::size_t fresh = available.front();
    std::optional<SplitCandidate> best;
    for (std::size_t q = victim.interval.first; q + 1 <= victim.interval.last; ++q) {
      const Interval head{victim.interval.first, q};
      const Interval tail{q + 1, victim.interval.last};
      for (const auto& [pa, pb] :
           {std::pair{owner, fresh}, std::pair{fresh, owner}}) {
        const Real score =
            std::max(eval.cycleTime(head, pa), eval.cycleTime(tail, pb));
        if (!definitelyLess(score, bottleneckPeriod)) continue;
        if (!best || score < best->score) {
          best = SplitCandidate{{ReplicatedAssignment{head, {pa}},
                                 ReplicatedAssignment{tail, {pb}}},
                                score};
        }
      }
    }
    return best;
  }

  /// Period contribution of interval j if the fastest unused processor joined
  /// its replica set; nullopt when inadmissible.
  std::optional<Real> replicationScore(std::size_t j, Real bottleneckPeriod) const {
    if (available.empty()) return std::nullopt;
    const ReplicatedAssignment& victim = mapping.assignment(j);
    Real worstCycle = eval.cycleTime(victim.interval, available.front());
    for (std::size_t u : victim.processors) {
      worstCycle = std::max(worstCycle, eval.cycleTime(victim.interval, u));
    }
    const Real score = worstCycle / static_cast<Real>(victim.processors.size() + 1);
    if (!definitelyLess(score, bottleneckPeriod)) return std::nullopt;
    return score;
  }

  DealResult run() {
    for (;;) {
      const Metrics metrics = core::evaluateReplicated(eval, mapping);
      if (target && lessOrNearlyEqual(metrics.period, *target)) break;
      const std::size_t j = metrics.bottleneckInterval;
      const Real bottleneck = core::replicatedIntervalPeriod(eval, mapping, j);

      const auto split = bestSplit(j, bottleneck);
      const auto replicate = replicationScore(j, bottleneck);

      const bool chooseReplication =
          replicate && (!split || (options.replicationCompetesWithSplits
                                       ? *replicate < split->score
                                       : false));
      if (chooseReplication) {
        mapping.addReplica(j, available.front());
        available.erase(available.begin());
        ++replications;
      } else if (split) {
        const std::size_t fresh = available.front();
        mapping.replaceInterval(j, split->replacement);
        available.erase(std::find(available.begin(), available.end(), fresh));
        ++splits;
      } else if (replicate) {
        mapping.addReplica(j, available.front());
        available.erase(available.begin());
        ++replications;
      } else {
        break;  // no admissible move
      }
    }
    DealResult result;
    result.mapping = mapping;
    result.metrics = core::evaluateReplicated(eval, mapping);
    result.splits = splits;
    result.replications = replications;
    result.success = !target || lessOrNearlyEqual(result.metrics.period, *target);
    return result;
  }
};

}  // namespace

DealResult spMonoPWithDeal(const core::Evaluator& eval, Real periodBound,
                           const DealOptions& options) {
  return DealEngine(eval, periodBound, options).run();
}

Real dealExhaustionPeriod(const core::Evaluator& eval, const DealOptions& options) {
  return DealEngine(eval, std::nullopt, options).run().metrics.period;
}

}  // namespace pipesched::heuristics
