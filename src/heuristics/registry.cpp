#include "pipesched/heuristics/registry.hpp"

namespace pipesched::heuristics {

namespace {

/// Shared implementation: all per-heuristic behaviour is table-driven.
class HeuristicImpl final : public MappingHeuristic {
 public:
  struct Spec {
    HeuristicId id;
    const char* name;
    const char* paperName;
    Objective objective;
    Result (*runner)(const Evaluator&, Real);
    // Engine configuration of the run-to-exhaustion variant (period family).
    SelectionRule exhaustRule;
    SplitArity exhaustArity;
  };

  explicit HeuristicImpl(const Spec& spec) : spec_(spec) {}

  [[nodiscard]] HeuristicId id() const override { return spec_.id; }
  [[nodiscard]] std::string name() const override { return spec_.name; }
  [[nodiscard]] std::string paperName() const override { return spec_.paperName; }
  [[nodiscard]] Objective objective() const override { return spec_.objective; }

  [[nodiscard]] Result run(const Evaluator& eval, Real threshold) const override {
    return spec_.runner(eval, threshold);
  }

  [[nodiscard]] Real failureThreshold(const Evaluator& eval) const override {
    if (spec_.objective == Objective::kMinPeriodForLatency) {
      // H5/H6 fail exactly when the bound is below the Lemma-1 optimum.
      return eval.optimalLatency();
    }
    EngineConfig config;
    config.rule = spec_.exhaustRule;
    config.arity = spec_.exhaustArity;
    config.periodTarget = std::nullopt;  // split until no improvement
    return runSplittingEngine(eval, config).metrics.period;
  }

 private:
  Spec spec_;
};

Result runSpBiPDefault(const Evaluator& eval, Real threshold) {
  return spBiP(eval, threshold);
}

const HeuristicImpl::Spec kSpecs[] = {
    {HeuristicId::kH1SpMonoP, "H1-SpMonoP", "Sp mono, P fix", Objective::kMinLatencyForPeriod,
     &spMonoP, SelectionRule::kMonoMax, SplitArity::kTwo},
    {HeuristicId::kH2ExploThreeMono, "H2-3ExploMono", "3-Explo mono",
     Objective::kMinLatencyForPeriod, &exploThreeMono, SelectionRule::kMonoMax,
     SplitArity::kThree},
    {HeuristicId::kH3ExploThreeBi, "H3-3ExploBi", "3-Explo bi",
     Objective::kMinLatencyForPeriod, &exploThreeBi, SelectionRule::kBiRatio,
     SplitArity::kThree},
    {HeuristicId::kH4SpBiP, "H4-SpBiP", "Sp bi, P fix", Objective::kMinLatencyForPeriod,
     &runSpBiPDefault, SelectionRule::kBiRatio, SplitArity::kTwo},
    {HeuristicId::kH5SpMonoL, "H5-SpMonoL", "Sp mono, L fix", Objective::kMinPeriodForLatency,
     &spMonoL, SelectionRule::kMonoMax, SplitArity::kTwo},
    {HeuristicId::kH6SpBiL, "H6-SpBiL", "Sp bi, L fix", Objective::kMinPeriodForLatency,
     &spBiL, SelectionRule::kBiRatio, SplitArity::kTwo},
};

const HeuristicImpl::Spec& specFor(HeuristicId id) {
  for (const auto& spec : kSpecs) {
    if (spec.id == id) return spec;
  }
  throw ModelError("makeHeuristic: unknown heuristic id");
}

}  // namespace

std::unique_ptr<MappingHeuristic> makeHeuristic(HeuristicId id) {
  return std::make_unique<HeuristicImpl>(specFor(id));
}

std::vector<std::unique_ptr<MappingHeuristic>> makeAllHeuristics() {
  std::vector<std::unique_ptr<MappingHeuristic>> out;
  for (const auto& spec : kSpecs) {
    out.push_back(std::make_unique<HeuristicImpl>(spec));
  }
  return out;
}

std::vector<HeuristicId> allHeuristicIds() {
  std::vector<HeuristicId> out;
  for (const auto& spec : kSpecs) out.push_back(spec.id);
  return out;
}

}  // namespace pipesched::heuristics
