#include "pipesched/heuristics/heuristics.hpp"

namespace pipesched::heuristics {

namespace {

Result fromEngine(EngineResult engine) {
  Result r;
  r.success = engine.reachedTarget;
  r.mapping = std::move(engine.mapping);
  r.metrics = engine.metrics;
  r.splits = engine.splits;
  return r;
}

Result runPeriodConstrained(const Evaluator& eval, Real periodBound, SelectionRule rule,
                            SplitArity arity, Real latencyCap = kInfinity) {
  EngineConfig config;
  config.rule = rule;
  config.arity = arity;
  config.periodTarget = periodBound;
  config.latencyCap = latencyCap;
  return fromEngine(runSplittingEngine(eval, config));
}

}  // namespace

Result spMonoP(const Evaluator& eval, Real periodBound) {
  return runPeriodConstrained(eval, periodBound, SelectionRule::kMonoMax, SplitArity::kTwo);
}

Result exploThreeMono(const Evaluator& eval, Real periodBound) {
  return runPeriodConstrained(eval, periodBound, SelectionRule::kMonoMax, SplitArity::kThree);
}

Result exploThreeBi(const Evaluator& eval, Real periodBound) {
  return runPeriodConstrained(eval, periodBound, SelectionRule::kBiRatio, SplitArity::kThree);
}

Result spBiP(const Evaluator& eval, Real periodBound, const SpBiPOptions& options) {
  // Unlimited-latency run: establishes feasibility of the period bound for
  // this splitting mechanism and an upper bound on the needed latency.
  Result unlimited = runPeriodConstrained(eval, periodBound, SelectionRule::kBiRatio,
                                          SplitArity::kTwo);
  if (!unlimited.success) return unlimited;

  // Binary search on the authorized latency between the Lemma-1 optimum and
  // the latency the unlimited run needed. Keep the best feasible solution
  // (smallest achieved latency).
  Real lo = eval.optimalLatency();
  Real hi = unlimited.metrics.latency;
  Result best = std::move(unlimited);
  for (int iter = 0; iter < options.bisectionIterations && definitelyLess(lo, hi); ++iter) {
    const Real mid = Real(0.5) * (lo + hi);
    Result attempt = runPeriodConstrained(eval, periodBound, SelectionRule::kBiRatio,
                                          SplitArity::kTwo, mid);
    if (attempt.success) {
      hi = attempt.metrics.latency;  // achieved latency can undercut the cap
      if (attempt.metrics.latency < best.metrics.latency) best = std::move(attempt);
    } else {
      lo = mid;
    }
  }
  return best;
}

namespace {

Result runLatencyConstrained(const Evaluator& eval, Real latencyBound, SelectionRule rule) {
  EngineConfig config;
  config.rule = rule;
  config.arity = SplitArity::kTwo;
  config.periodTarget = std::nullopt;  // run to exhaustion
  config.latencyCap = latencyBound;

  Result r = fromEngine(runSplittingEngine(eval, config));
  // Feasibility only depends on the initial (Lemma-1) solution: if even that
  // exceeds the latency bound, the heuristic fails — this is exactly why the
  // paper's Table 1 reports identical failure thresholds for H5 and H6.
  r.success = lessOrNearlyEqual(r.metrics.latency, latencyBound);
  return r;
}

}  // namespace

Result spMonoL(const Evaluator& eval, Real latencyBound) {
  return runLatencyConstrained(eval, latencyBound, SelectionRule::kMonoMax);
}

Result spBiL(const Evaluator& eval, Real latencyBound) {
  return runLatencyConstrained(eval, latencyBound, SelectionRule::kBiRatio);
}

}  // namespace pipesched::heuristics
