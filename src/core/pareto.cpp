#include "pipesched/core/pareto.hpp"

#include <algorithm>

namespace pipesched::core {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  const bool noWorse = a.period <= b.period + kTimeEps && a.latency <= b.latency + kTimeEps;
  const bool strictlyBetter =
      definitelyLess(a.period, b.period) || definitelyLess(a.latency, b.latency);
  return noWorse && strictlyBetter;
}

std::vector<ParetoPoint> paretoFront(std::vector<ParetoPoint> points) {
  ParetoFrontBuilder builder;
  for (ParetoPoint& p : points) builder.offer(std::move(p));
  return builder.take();
}

bool ParetoFrontBuilder::offer(ParetoPoint point) {
  for (const ParetoPoint& existing : points_) {
    if (dominates(existing, point)) return false;
    if (nearlyEqual(existing.period, point.period) &&
        nearlyEqual(existing.latency, point.latency)) {
      return false;  // duplicate coordinates: keep the first representative
    }
  }
  std::erase_if(points_, [&](const ParetoPoint& existing) { return dominates(point, existing); });
  points_.push_back(std::move(point));
  return true;
}

std::vector<ParetoPoint> ParetoFrontBuilder::take() {
  std::sort(points_.begin(), points_.end(), [](const ParetoPoint& a, const ParetoPoint& b) {
    return a.period < b.period || (a.period == b.period && a.latency < b.latency);
  });
  return std::move(points_);
}

}  // namespace pipesched::core
