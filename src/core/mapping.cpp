#include "pipesched/core/mapping.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace pipesched::core {

namespace {

void checkOrdering(const std::vector<Assignment>& parts) {
  for (std::size_t j = 0; j < parts.size(); ++j) {
    const Interval& iv = parts[j].interval;
    if (iv.last < iv.first) {
      throw MappingError("IntervalMapping: interval " + std::to_string(j) + " is empty");
    }
    if (j > 0 && iv.first != parts[j - 1].interval.last + 1) {
      throw MappingError("IntervalMapping: interval " + std::to_string(j) +
                         " does not start right after its predecessor");
    }
  }
}

}  // namespace

IntervalMapping::IntervalMapping(std::vector<Assignment> assignments)
    : parts_(std::move(assignments)) {
  checkOrdering(parts_);
}

IntervalMapping IntervalMapping::fromValidated(std::vector<Assignment> assignments) {
  IntervalMapping out;
  out.parts_ = std::move(assignments);
#ifndef NDEBUG
  checkOrdering(out.parts_);
#endif
  return out;
}

IntervalMapping IntervalMapping::singleInterval(std::size_t n, std::size_t processor) {
  if (n == 0) throw MappingError("IntervalMapping::singleInterval: empty pipeline");
  return IntervalMapping({Assignment{Interval{0, n - 1}, processor}});
}

IntervalMapping IntervalMapping::oneToOne(const std::vector<std::size_t>& processors) {
  if (processors.empty()) throw MappingError("IntervalMapping::oneToOne: empty pipeline");
  std::vector<Assignment> parts;
  parts.reserve(processors.size());
  for (std::size_t k = 0; k < processors.size(); ++k) {
    parts.push_back(Assignment{Interval{k, k}, processors[k]});
  }
  return IntervalMapping(std::move(parts));
}

IntervalMapping IntervalMapping::fromCuts(std::size_t n, const std::vector<std::size_t>& ends,
                                          const std::vector<std::size_t>& processors) {
  if (ends.size() != processors.size()) {
    throw MappingError("IntervalMapping::fromCuts: ends/processors size mismatch");
  }
  if (ends.empty() || ends.back() != n - 1) {
    throw MappingError("IntervalMapping::fromCuts: last end must be n-1");
  }
  std::vector<Assignment> parts;
  parts.reserve(ends.size());
  std::size_t first = 0;
  for (std::size_t j = 0; j < ends.size(); ++j) {
    if (ends[j] < first || ends[j] >= n) {
      throw MappingError("IntervalMapping::fromCuts: ends must be strictly increasing and < n");
    }
    parts.push_back(Assignment{Interval{first, ends[j]}, processors[j]});
    first = ends[j] + 1;
  }
  return IntervalMapping(std::move(parts));
}

std::size_t IntervalMapping::stageCount() const noexcept {
  return parts_.empty() ? 0 : parts_.back().interval.last + 1;
}

std::size_t IntervalMapping::intervalOf(std::size_t k) const {
  // Binary search over interval starts.
  auto it = std::upper_bound(parts_.begin(), parts_.end(), k,
                             [](std::size_t key, const Assignment& a) {
                               return key < a.interval.first;
                             });
  if (it == parts_.begin()) {
    throw MappingError("IntervalMapping::intervalOf: stage before first interval");
  }
  --it;
  if (!it->interval.contains(k)) {
    throw MappingError("IntervalMapping::intervalOf: stage " + std::to_string(k) +
                       " not covered");
  }
  return static_cast<std::size_t>(it - parts_.begin());
}

void IntervalMapping::replaceInterval(std::size_t j, const std::vector<Assignment>& replacement) {
  if (j >= parts_.size()) {
    throw MappingError("IntervalMapping::replaceInterval: interval index out of range");
  }
  if (replacement.empty()) {
    throw MappingError("IntervalMapping::replaceInterval: empty replacement");
  }
  const Interval victim = parts_[j].interval;
  if (replacement.front().interval.first != victim.first ||
      replacement.back().interval.last != victim.last) {
    throw MappingError("IntervalMapping::replaceInterval: replacement does not tile the victim");
  }
  for (std::size_t r = 1; r < replacement.size(); ++r) {
    if (replacement[r].interval.first != replacement[r - 1].interval.last + 1) {
      throw MappingError("IntervalMapping::replaceInterval: replacement intervals not contiguous");
    }
  }
  parts_.erase(parts_.begin() + static_cast<std::ptrdiff_t>(j));
  parts_.insert(parts_.begin() + static_cast<std::ptrdiff_t>(j), replacement.begin(),
                replacement.end());
  checkOrdering(parts_);
}

void IntervalMapping::validate(std::size_t stages, std::size_t processorCount) const {
  if (parts_.empty()) throw MappingError("IntervalMapping: empty mapping");
  if (parts_.front().interval.first != 0) {
    throw MappingError("IntervalMapping: first interval must start at stage 0");
  }
  checkOrdering(parts_);
  if (parts_.back().interval.last != stages - 1) {
    throw MappingError("IntervalMapping: last interval must end at stage n-1");
  }
  if (parts_.size() > processorCount) {
    throw MappingError("IntervalMapping: more intervals than processors");
  }
  std::unordered_set<std::size_t> used;
  for (const Assignment& a : parts_) {
    if (a.processor >= processorCount) {
      throw MappingError("IntervalMapping: processor index " + std::to_string(a.processor) +
                         " out of range");
    }
    if (!used.insert(a.processor).second) {
      throw MappingError("IntervalMapping: processor " + std::to_string(a.processor) +
                         " assigned to two intervals");
    }
  }
}

bool IntervalMapping::isValid(std::size_t stages, std::size_t processorCount) const {
  try {
    validate(stages, processorCount);
    return true;
  } catch (const MappingError&) {
    return false;
  }
}

std::string IntervalMapping::describe() const {
  std::ostringstream os;
  for (std::size_t j = 0; j < parts_.size(); ++j) {
    if (j > 0) os << " | ";
    os << "[" << parts_[j].interval.first << "," << parts_[j].interval.last << "]->P"
       << parts_[j].processor;
  }
  return os.str();
}

}  // namespace pipesched::core
