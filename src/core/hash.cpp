#include "pipesched/core/hash.hpp"

namespace pipesched::core {

std::string hashHex(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xF];
    value >>= 4;
  }
  return out;
}

}  // namespace pipesched::core
