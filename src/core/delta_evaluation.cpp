#include "pipesched/core/delta_evaluation.hpp"

#include <algorithm>
#include <utility>

#include "pipesched/obs/metrics.hpp"

namespace pipesched::core {

void recordDeltaKernelStats(const DeltaStats& stats) {
  if (!obs::metricsEnabled()) return;
  static obs::Counter& peeks = obs::registry().counter(obs::names::kDeltaPeeks);
  static obs::Counter& applies = obs::registry().counter(obs::names::kDeltaApplies);
  static obs::Counter& replaces = obs::registry().counter(obs::names::kDeltaReplaces);
  static obs::Counter& undos = obs::registry().counter(obs::names::kDeltaUndos);
  peeks.add(stats.peeks);
  applies.add(stats.applies);
  replaces.add(stats.replaces);
  undos.add(stats.undos);
}

void EvalWorkspace::reserve(std::size_t maxIntervals, std::size_t processorCount) {
  parts_.reserve(maxIntervals);
  breakdowns_.reserve(maxIntervals);
  cycles_.reserve(maxIntervals);
  latTerms_.reserve(maxIntervals);
  prefixPeriod_.reserve(maxIntervals);
  prefixBottleneck_.reserve(maxIntervals);
  prefixLat_.reserve(maxIntervals);
  used_.reserve(processorCount);
  savedEntries_.reserve(8);
  savedBits_.reserve(8);
}

DeltaEvaluator::DeltaEvaluator(const Evaluator& eval, EvalWorkspace& workspace)
    : eval_(&eval),
      ws_(&workspace),
      neighborReach_(eval.platform().isCommHomogeneous() ? 0 : 1) {}

void DeltaEvaluator::load(const IntervalMapping& mapping) { load(mapping.assignments()); }

void DeltaEvaluator::load(const std::vector<Assignment>& parts) {
  if (parts.empty()) throw MappingError("DeltaEvaluator::load: empty mapping");
  const std::size_t p = eval_->platform().processorCount();
  // An interval mapping never has more intervals than processors, so one
  // reservation makes every later structural move allocation-free.
  const std::size_t cap = std::max(parts.size(), p);
  ws_->parts_.reserve(cap);
  ws_->breakdowns_.reserve(cap);
  ws_->cycles_.reserve(cap);
  ws_->latTerms_.reserve(cap);
  ws_->parts_.assign(parts.begin(), parts.end());
  ws_->breakdowns_.resize(parts.size());
  ws_->cycles_.resize(parts.size());
  ws_->latTerms_.resize(parts.size());
  ws_->prefixPeriod_.resize(cap);
  ws_->prefixBottleneck_.resize(cap);
  ws_->prefixLat_.resize(cap);
  ws_->used_.assign(p, 0);
  for (const Assignment& a : ws_->parts_) {
    if (a.processor >= p) throw MappingError("DeltaEvaluator::load: processor out of range");
    ws_->used_[a.processor] = 1;
  }
  ws_->savedEntries_.clear();
  ws_->savedBits_.clear();
  ws_->savedEntries_.reserve(8);
  ws_->savedBits_.reserve(8);
  pending_ = PendingOp::kNone;
  refresh(0, ws_->parts_.size() - 1);
  prefixValid_ = 0;
  metricsDirty_ = true;
}

void DeltaEvaluator::refresh(std::size_t lo, std::size_t hi) {
  const std::size_t m = ws_->parts_.size();
  hi = std::min(hi, m - 1);
  for (std::size_t i = lo; i <= hi; ++i) {
    const std::size_t* prevProc = i > 0 ? &ws_->parts_[i - 1].processor : nullptr;
    const std::size_t* nextProc = i + 1 < m ? &ws_->parts_[i + 1].processor : nullptr;
    const CycleBreakdown b = eval_->breakdown(ws_->parts_[i], prevProc, nextProc);
    ws_->breakdowns_[i] = b;
    ws_->cycles_[i] = eval_->cycleOf(b);
    // Same single addition Evaluator::evaluate performs per interval, so the
    // resumed fold below reproduces its latency bit for bit.
    ws_->latTerms_[i] = b.input + b.compute;
  }
}

void DeltaEvaluator::refreshCompute(std::size_t i) {
  // Comm-homogeneous + processor-only move: the interval's comm sizes and
  // every bandwidth are unchanged, so input/output stand; only compute moves
  // to the new speed (the same expression Evaluator::breakdown uses).
  CycleBreakdown& b = ws_->breakdowns_[i];
  b.compute = eval_->computeTime(ws_->parts_[i].interval, ws_->parts_[i].processor);
  ws_->cycles_[i] = eval_->cycleOf(b);
  ws_->latTerms_[i] = b.input + b.compute;
}

void DeltaEvaluator::scan(bool writePrefixes) {
  const std::size_t m = ws_->parts_.size();
  if (m == 0) throw MappingError("DeltaEvaluator::metrics: empty mapping");
  // Replay Evaluator::evaluate's accumulation order exactly (FP addition is
  // order-sensitive), resuming from the prefix caches at the first interval
  // touched since they were written. Peeks over a pending move leave the
  // prefixes untouched; scans over committed state refresh them.
  if (writePrefixes && ws_->prefixPeriod_.size() < m) {
    ws_->prefixPeriod_.resize(m);
    ws_->prefixBottleneck_.resize(m);
    ws_->prefixLat_.resize(m);
  }
  Real period = Real(0);
  std::size_t bottleneck = 0;
  Real latency = Real(0);
  std::size_t start = std::min(prefixValid_, m);
  if (start > 0) {
    period = ws_->prefixPeriod_[start - 1];
    bottleneck = ws_->prefixBottleneck_[start - 1];
    latency = ws_->prefixLat_[start - 1];
  }
  for (std::size_t j = start; j < m; ++j) {
    const Real cycle = ws_->cycles_[j];
    if (cycle > period) {
      period = cycle;
      bottleneck = j;
    }
    latency += ws_->latTerms_[j];
    if (writePrefixes) {
      ws_->prefixPeriod_[j] = period;
      ws_->prefixBottleneck_[j] = bottleneck;
      ws_->prefixLat_[j] = latency;
    }
  }
  if (writePrefixes) prefixValid_ = m;
  cached_.period = period;
  cached_.bottleneckInterval = bottleneck;
  cached_.latency = latency + ws_->breakdowns_[m - 1].output;
  metricsDirty_ = false;
}

const Metrics& DeltaEvaluator::metrics() {
  if (metricsDirty_) scan(/*writePrefixes=*/pending_ == PendingOp::kNone);
  return cached_;
}

namespace {

/// One hypothetically-updated interval for DeltaEvaluator::peek.
struct Patch {
  std::size_t index = 0;
  Real cycle = 0;
  Real latTerm = 0;
  Real output = 0;
};

}  // namespace

std::optional<Metrics> DeltaEvaluator::peek(const Move& move) const {
  ++stats_.peeks;
  const std::size_t m = ws_->parts_.size();
  const std::size_t p = ws_->used_.size();
  const std::vector<Assignment>& parts = ws_->parts_;
  // Patches are gathered in ascending POST-move index order (<= 6 of them).
  // Structural moves shift the indices past the edit point: an unpatched
  // post-move index e past the last patch reads the pre-move arrays at
  // e + tailShift (+1 after a merge, -1 after a split).
  Patch patches[6];
  std::size_t nPatches = 0;
  std::ptrdiff_t tailShift = 0;
  std::size_t mEff = m;
  const auto patch = [&](std::size_t index, const CycleBreakdown& b) {
    patches[nPatches++] =
        Patch{index, eval_->cycleOf(b), b.input + b.compute, b.output};
  };
  // Compute-only variant: comm-homogeneous platforms + processor-only moves
  // leave input/output standing (same shortcut refreshCompute() takes).
  const auto patchCompute = [&](std::size_t index, std::size_t proc) {
    CycleBreakdown b = ws_->breakdowns_[index];
    b.compute = eval_->computeTime(parts[index].interval, proc);
    patch(index, b);
  };

  switch (move.kind) {
    case Move::Kind::kReassign: {
      if (move.j >= m || move.u >= p || ws_->used_[move.u] != 0) return std::nullopt;
      if (neighborReach_ == 0) {
        patchCompute(move.j, move.u);
        break;
      }
      // Fully heterogeneous: the neighbours' link bandwidths change too.
      const std::size_t lo = move.j > 0 ? move.j - 1 : 0;
      const std::size_t hi = std::min(move.j + 1, m - 1);
      for (std::size_t i = lo; i <= hi; ++i) {
        Assignment a = parts[i];
        if (i == move.j) a.processor = move.u;
        std::size_t prev = 0;
        std::size_t next = 0;
        const std::size_t* prevProc = nullptr;
        const std::size_t* nextProc = nullptr;
        if (i > 0) {
          prev = i - 1 == move.j ? move.u : parts[i - 1].processor;
          prevProc = &prev;
        }
        if (i + 1 < m) {
          next = i + 1 == move.j ? move.u : parts[i + 1].processor;
          nextProc = &next;
        }
        patch(i, eval_->breakdown(a, prevProc, nextProc));
      }
      break;
    }
    case Move::Kind::kSwap: {
      if (move.j >= m || move.k >= m || move.j == move.k) return std::nullopt;
      const std::size_t a = std::min(move.j, move.k);
      const std::size_t b = std::max(move.j, move.k);
      const auto hypProc = [&](std::size_t i) {
        if (i == a) return parts[b].processor;
        if (i == b) return parts[a].processor;
        return parts[i].processor;
      };
      if (neighborReach_ == 0) {
        patchCompute(a, parts[b].processor);
        patchCompute(b, parts[a].processor);
        break;
      }
      const std::size_t lo = a > 0 ? a - 1 : 0;
      const std::size_t hi = std::min(b + 1, m - 1);
      for (std::size_t i = lo; i <= hi; ++i) {
        const bool nearA = i + 1 >= a && i <= a + 1;
        const bool nearB = i + 1 >= b && i <= b + 1;
        if (!nearA && !nearB) continue;
        Assignment hyp{parts[i].interval, hypProc(i)};
        std::size_t prev = 0;
        std::size_t next = 0;
        const std::size_t* prevProc = nullptr;
        const std::size_t* nextProc = nullptr;
        if (i > 0) {
          prev = hypProc(i - 1);
          prevProc = &prev;
        }
        if (i + 1 < m) {
          next = hypProc(i + 1);
          nextProc = &next;
        }
        patch(i, eval_->breakdown(hyp, prevProc, nextProc));
      }
      break;
    }
    case Move::Kind::kShiftLeft:
    case Move::Kind::kShiftRight: {
      const std::size_t j = move.j;
      if (j + 1 >= m) return std::nullopt;
      Assignment left = parts[j];
      Assignment right = parts[j + 1];
      if (move.kind == Move::Kind::kShiftLeft) {
        if (left.interval.length() < 2) return std::nullopt;
        --left.interval.last;
        --right.interval.first;
      } else {
        if (right.interval.length() < 2) return std::nullopt;
        ++left.interval.last;
        ++right.interval.first;
      }
      // Neighbours keep their comm sizes and link processors: only the two
      // shifted intervals change, on every platform kind.
      std::size_t prev = 0;
      std::size_t next = 0;
      const std::size_t* prevProc = nullptr;
      const std::size_t* nextProc = nullptr;
      if (j > 0) {
        prev = parts[j - 1].processor;
        prevProc = &prev;
      }
      patch(j, eval_->breakdown(left, prevProc, &right.processor));
      if (j + 2 < m) {
        next = parts[j + 2].processor;
        nextProc = &next;
      }
      patch(j + 1, eval_->breakdown(right, &left.processor, nextProc));
      break;
    }
    case Move::Kind::kMerge: {
      const std::size_t j = move.j;
      if (j + 1 >= m) return std::nullopt;
      const Assignment merged{
          Interval{parts[j].interval.first, parts[j + 1].interval.last},
          move.keepLeft ? parts[j].processor : parts[j + 1].processor};
      std::size_t prev = 0;
      std::size_t next = 0;
      const std::size_t* prevProc = nullptr;
      const std::size_t* nextProc = nullptr;
      if (j > 0) {
        prev = parts[j - 1].processor;
        prevProc = &prev;
      }
      if (j + 2 < m) {
        next = parts[j + 2].processor;
        nextProc = &next;
      }
      if (neighborReach_ > 0 && j > 0) {
        // Fully heterogeneous: the left neighbour's outgoing link now ends
        // at the merged interval's processor.
        std::size_t prevPrev = 0;
        const std::size_t* prevPrevProc = nullptr;
        if (j > 1) {
          prevPrev = parts[j - 2].processor;
          prevPrevProc = &prevPrev;
        }
        patch(j - 1, eval_->breakdown(parts[j - 1], prevPrevProc, &merged.processor));
      }
      patch(j, eval_->breakdown(merged, prevProc, nextProc));
      if (neighborReach_ > 0 && j + 2 < m) {
        // ... and the right neighbour's incoming link now starts there. Its
        // post-move index is j + 1.
        std::size_t nextNext = 0;
        const std::size_t* nextNextProc = nullptr;
        if (j + 3 < m) {
          nextNext = parts[j + 3].processor;
          nextNextProc = &nextNext;
        }
        patch(j + 1, eval_->breakdown(parts[j + 2], &merged.processor, nextNextProc));
      }
      mEff = m - 1;
      tailShift = 1;
      break;
    }
    case Move::Kind::kSplit: {
      const std::size_t j = move.j;
      if (j >= m || move.u >= p || ws_->used_[move.u] != 0) return std::nullopt;
      const Interval iv = parts[j].interval;
      if (move.k < iv.first || move.k >= iv.last) return std::nullopt;
      const std::size_t owner = parts[j].processor;
      const Assignment head{Interval{iv.first, move.k}, owner};
      const Assignment tail{Interval{move.k + 1, iv.last}, move.u};
      std::size_t prev = 0;
      std::size_t next = 0;
      const std::size_t* prevProc = nullptr;
      const std::size_t* nextProc = nullptr;
      if (j > 0) {
        prev = parts[j - 1].processor;
        prevProc = &prev;
      }
      if (j + 1 < m) {
        next = parts[j + 1].processor;
        nextProc = &next;
      }
      // The left neighbour is untouched even on heterogeneous platforms: the
      // head keeps the owner, so its outgoing link is unchanged.
      patch(j, eval_->breakdown(head, prevProc, &tail.processor));
      patch(j + 1, eval_->breakdown(tail, &head.processor, nextProc));
      if (neighborReach_ > 0 && j + 1 < m) {
        // The right neighbour's incoming link now starts at the tail's
        // processor. Its post-move index is j + 2.
        std::size_t nextNext = 0;
        const std::size_t* nextNextProc = nullptr;
        if (j + 2 < m) {
          nextNext = parts[j + 2].processor;
          nextNextProc = &nextNext;
        }
        patch(j + 2, eval_->breakdown(parts[j + 1], &tail.processor, nextNextProc));
      }
      mEff = m + 1;
      tailShift = -1;
      break;
    }
  }

  // Resume the bit-exact fold from the prefix caches, patching the touched
  // intervals in as the scan passes them. Prefix entries below the first
  // patch are unaffected by any index shift.
  Real period = Real(0);
  std::size_t bottleneck = 0;
  Real latency = Real(0);
  const std::size_t lastPatch = patches[nPatches - 1].index;
  const std::size_t start = std::min(prefixValid_, patches[0].index);
  if (start > 0) {
    period = ws_->prefixPeriod_[start - 1];
    bottleneck = ws_->prefixBottleneck_[start - 1];
    latency = ws_->prefixLat_[start - 1];
  }
  std::size_t pi = 0;
  for (std::size_t j = start; j < mEff; ++j) {
    Real cycle;
    Real latTerm;
    if (pi < nPatches && patches[pi].index == j) {
      cycle = patches[pi].cycle;
      latTerm = patches[pi].latTerm;
      ++pi;
    } else {
      const std::size_t old =
          j > lastPatch ? static_cast<std::size_t>(static_cast<std::ptrdiff_t>(j) + tailShift)
                        : j;
      cycle = ws_->cycles_[old];
      latTerm = ws_->latTerms_[old];
    }
    if (cycle > period) {
      period = cycle;
      bottleneck = j;
    }
    latency += latTerm;
  }
  Metrics out;
  out.period = period;
  out.bottleneckInterval = bottleneck;
  const Real lastOutput =
      lastPatch == mEff - 1
          ? patches[nPatches - 1].output
          : ws_->breakdowns_[static_cast<std::size_t>(
                                 static_cast<std::ptrdiff_t>(mEff - 1) + tailShift)]
                .output;
  out.latency = latency + lastOutput;
  return out;
}

void DeltaEvaluator::beginMove(std::size_t touchedLo) {
  ws_->savedEntries_.clear();
  ws_->savedBits_.clear();
  savedMetrics_ = cached_;
  savedMetricsDirty_ = metricsDirty_;
  savedPrefixValid_ = prefixValid_;
  prefixValid_ = std::min(prefixValid_, touchedLo);
  pending_ = PendingOp::kEntries;
  pendingPos_ = 0;
  pendingCount_ = 0;
}

void DeltaEvaluator::saveRange(std::size_t lo, std::size_t hi) {
  hi = std::min(hi, ws_->parts_.size() - 1);
  for (std::size_t i = lo; i <= hi; ++i) {
    ws_->savedEntries_.push_back(EvalWorkspace::SavedEntry{
        i, ws_->parts_[i], ws_->breakdowns_[i], ws_->cycles_[i], ws_->latTerms_[i]});
  }
}

void DeltaEvaluator::setUsed(std::size_t processor, bool used) {
  ws_->savedBits_.push_back(
      EvalWorkspace::SavedBit{processor, ws_->used_[processor] != 0});
  ws_->used_[processor] = used ? 1 : 0;
}

bool DeltaEvaluator::apply(const Move& move) {
  const std::size_t m = ws_->parts_.size();
  const std::size_t p = ws_->used_.size();
  const std::size_t reach = neighborReach_;
  std::vector<Assignment>& parts = ws_->parts_;
  switch (move.kind) {
    case Move::Kind::kReassign: {
      if (move.j >= m || move.u >= p || ws_->used_[move.u] != 0) return false;
      const std::size_t lo = move.j > reach ? move.j - reach : 0;
      beginMove(lo);
      saveRange(lo, move.j + reach);
      setUsed(parts[move.j].processor, false);
      setUsed(move.u, true);
      parts[move.j].processor = move.u;
      if (reach == 0) {
        refreshCompute(move.j);
      } else {
        refresh(lo, move.j + reach);
      }
      break;
    }
    case Move::Kind::kSwap: {
      if (move.j >= m || move.k >= m || move.j == move.k) return false;
      const std::size_t jLo = move.j > reach ? move.j - reach : 0;
      const std::size_t kLo = move.k > reach ? move.k - reach : 0;
      beginMove(std::min(jLo, kLo));
      saveRange(jLo, move.j + reach);
      saveRange(kLo, move.k + reach);
      std::swap(parts[move.j].processor, parts[move.k].processor);
      if (reach == 0) {
        refreshCompute(move.j);
        refreshCompute(move.k);
      } else {
        refresh(jLo, move.j + reach);
        refresh(kLo, move.k + reach);
      }
      break;
    }
    case Move::Kind::kShiftLeft: {
      if (move.j + 1 >= m || parts[move.j].interval.length() < 2) return false;
      beginMove(move.j);
      saveRange(move.j, move.j + 1);
      --parts[move.j].interval.last;
      --parts[move.j + 1].interval.first;
      refresh(move.j, move.j + 1);
      break;
    }
    case Move::Kind::kShiftRight: {
      if (move.j + 1 >= m || parts[move.j + 1].interval.length() < 2) return false;
      beginMove(move.j);
      saveRange(move.j, move.j + 1);
      ++parts[move.j].interval.last;
      ++parts[move.j + 1].interval.first;
      refresh(move.j, move.j + 1);
      break;
    }
    case Move::Kind::kMerge: {
      if (move.j + 1 >= m) return false;
      const std::size_t lo = move.j > reach ? move.j - reach : 0;
      beginMove(lo);
      saveRange(lo, move.j + 1 + reach);  // pre-frame: both halves + neighbours
      const std::size_t freed =
          move.keepLeft ? parts[move.j + 1].processor : parts[move.j].processor;
      setUsed(freed, false);
      parts[move.j].interval.last = parts[move.j + 1].interval.last;
      if (!move.keepLeft) parts[move.j].processor = parts[move.j + 1].processor;
      parts.erase(parts.begin() + static_cast<std::ptrdiff_t>(move.j) + 1);
      ws_->breakdowns_.erase(ws_->breakdowns_.begin() +
                             static_cast<std::ptrdiff_t>(move.j) + 1);
      ws_->cycles_.erase(ws_->cycles_.begin() + static_cast<std::ptrdiff_t>(move.j) + 1);
      ws_->latTerms_.erase(ws_->latTerms_.begin() + static_cast<std::ptrdiff_t>(move.j) + 1);
      pending_ = PendingOp::kInsertAt;
      pendingPos_ = move.j + 1;
      pendingCount_ = 1;
      refresh(lo, move.j + reach);
      break;
    }
    case Move::Kind::kSplit: {
      if (move.j >= m || move.u >= p || ws_->used_[move.u] != 0) return false;
      const Interval iv = parts[move.j].interval;
      if (move.k < iv.first || move.k >= iv.last) return false;
      const std::size_t lo = move.j > reach ? move.j - reach : 0;
      beginMove(lo);
      saveRange(lo, move.j + reach);  // pre-frame: victim + neighbours
      setUsed(move.u, true);
      Assignment tail;
      tail.interval = Interval{move.k + 1, iv.last};
      tail.processor = move.u;
      parts[move.j].interval.last = move.k;
      parts.insert(parts.begin() + static_cast<std::ptrdiff_t>(move.j) + 1, tail);
      ws_->breakdowns_.insert(ws_->breakdowns_.begin() +
                                  static_cast<std::ptrdiff_t>(move.j) + 1,
                              CycleBreakdown{});
      ws_->cycles_.insert(ws_->cycles_.begin() + static_cast<std::ptrdiff_t>(move.j) + 1,
                          Real(0));
      ws_->latTerms_.insert(ws_->latTerms_.begin() + static_cast<std::ptrdiff_t>(move.j) + 1,
                            Real(0));
      pending_ = PendingOp::kEraseAt;
      pendingPos_ = move.j + 1;
      pendingCount_ = 1;
      refresh(lo, move.j + 1 + reach);
      break;
    }
  }
  ++stats_.applies;
  metricsDirty_ = true;
  return true;
}

bool DeltaEvaluator::replaceInterval(std::size_t j, const Assignment* replacement,
                                     std::size_t count) {
  const std::size_t m = ws_->parts_.size();
  if (j >= m) throw MappingError("DeltaEvaluator::replaceInterval: index out of range");
  if (count == 0) throw MappingError("DeltaEvaluator::replaceInterval: empty replacement");
  const Interval victim = ws_->parts_[j].interval;
  if (replacement[0].interval.first != victim.first ||
      replacement[count - 1].interval.last != victim.last) {
    throw MappingError("DeltaEvaluator::replaceInterval: replacement does not tile the victim");
  }
  for (std::size_t r = 0; r < count; ++r) {
    const Interval& iv = replacement[r].interval;
    if (iv.last < iv.first ||
        (r > 0 && iv.first != replacement[r - 1].interval.last + 1)) {
      throw MappingError("DeltaEvaluator::replaceInterval: replacement intervals not contiguous");
    }
  }
  // Processor feasibility: every replacement processor must be the victim's
  // own or currently unused, and the replacement must not repeat one.
  const std::size_t victimProc = ws_->parts_[j].processor;
  const std::size_t p = ws_->used_.size();
  for (std::size_t r = 0; r < count; ++r) {
    const std::size_t u = replacement[r].processor;
    if (u >= p) return false;
    if (u != victimProc && ws_->used_[u] != 0) return false;
    for (std::size_t s = r + 1; s < count; ++s) {
      if (replacement[s].processor == u) return false;
    }
  }

  const std::size_t reach = neighborReach_;
  const std::size_t lo = j > reach ? j - reach : 0;
  beginMove(lo);
  saveRange(lo, j + reach);  // pre-frame: victim + neighbours
  setUsed(victimProc, false);
  for (std::size_t r = 0; r < count; ++r) setUsed(replacement[r].processor, true);

  ws_->parts_[j] = replacement[0];
  if (count > 1) {
    ws_->parts_.insert(ws_->parts_.begin() + static_cast<std::ptrdiff_t>(j) + 1,
                       replacement + 1, replacement + count);
    ws_->breakdowns_.insert(ws_->breakdowns_.begin() + static_cast<std::ptrdiff_t>(j) + 1,
                            count - 1, CycleBreakdown{});
    ws_->cycles_.insert(ws_->cycles_.begin() + static_cast<std::ptrdiff_t>(j) + 1, count - 1,
                        Real(0));
    ws_->latTerms_.insert(ws_->latTerms_.begin() + static_cast<std::ptrdiff_t>(j) + 1,
                          count - 1, Real(0));
    pending_ = PendingOp::kEraseAt;
    pendingPos_ = j + 1;
    pendingCount_ = count - 1;
  }
  refresh(lo, j + count - 1 + reach);
  ++stats_.replaces;
  metricsDirty_ = true;
  return true;
}

void DeltaEvaluator::undo() {
  if (pending_ == PendingOp::kNone) {
    throw ModelError("DeltaEvaluator::undo: no move pending");
  }
  ++stats_.undos;
  if (pending_ == PendingOp::kEraseAt) {
    const auto at = static_cast<std::ptrdiff_t>(pendingPos_);
    const auto end = static_cast<std::ptrdiff_t>(pendingPos_ + pendingCount_);
    ws_->parts_.erase(ws_->parts_.begin() + at, ws_->parts_.begin() + end);
    ws_->breakdowns_.erase(ws_->breakdowns_.begin() + at, ws_->breakdowns_.begin() + end);
    ws_->cycles_.erase(ws_->cycles_.begin() + at, ws_->cycles_.begin() + end);
    ws_->latTerms_.erase(ws_->latTerms_.begin() + at, ws_->latTerms_.begin() + end);
  } else if (pending_ == PendingOp::kInsertAt) {
    const auto at = static_cast<std::ptrdiff_t>(pendingPos_);
    ws_->parts_.insert(ws_->parts_.begin() + at, pendingCount_, Assignment{});
    ws_->breakdowns_.insert(ws_->breakdowns_.begin() + at, pendingCount_, CycleBreakdown{});
    ws_->cycles_.insert(ws_->cycles_.begin() + at, pendingCount_, Real(0));
    ws_->latTerms_.insert(ws_->latTerms_.begin() + at, pendingCount_, Real(0));
  }
  // Saved entries are pre-move snapshots in the pre-move index frame, which
  // the structural inverse above just restored.
  for (const EvalWorkspace::SavedEntry& e : ws_->savedEntries_) {
    ws_->parts_[e.index] = e.part;
    ws_->breakdowns_[e.index] = e.breakdown;
    ws_->cycles_[e.index] = e.cycle;
    ws_->latTerms_[e.index] = e.latTerm;
  }
  // Bitmap log is chronological and a processor may appear twice (freed then
  // re-used): walk it backwards so the oldest value wins.
  for (auto it = ws_->savedBits_.rbegin(); it != ws_->savedBits_.rend(); ++it) {
    ws_->used_[it->processor] = it->wasUsed ? 1 : 0;
  }
  cached_ = savedMetrics_;
  metricsDirty_ = savedMetricsDirty_;
  // Peeks never write the prefix caches, so the pre-move prefix is intact.
  prefixValid_ = savedPrefixValid_;
  pending_ = PendingOp::kNone;
  pendingPos_ = 0;
  pendingCount_ = 0;
  ws_->savedEntries_.clear();
  ws_->savedBits_.clear();
}

void DeltaEvaluator::commit() noexcept {
  pending_ = PendingOp::kNone;
  pendingPos_ = 0;
  pendingCount_ = 0;
  ws_->savedEntries_.clear();
  ws_->savedBits_.clear();
  // Re-warm the prefix caches over the now-committed state: one resumed
  // fold here makes every subsequent peek O(tail from its own touch point)
  // instead of O(tail from this move's touch point).
  if (prefixValid_ < ws_->parts_.size()) scan(/*writePrefixes=*/true);
}

IntervalMapping DeltaEvaluator::mapping() const {
  return IntervalMapping::fromValidated(ws_->parts_);
}

}  // namespace pipesched::core
