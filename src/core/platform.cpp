#include "pipesched/core/platform.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace pipesched::core {

namespace {

void checkSpeeds(const std::vector<Real>& speeds) {
  if (speeds.empty()) {
    throw ModelError("Platform: needs at least one processor");
  }
  for (std::size_t u = 0; u < speeds.size(); ++u) {
    if (!(speeds[u] > Real(0)) || !std::isfinite(speeds[u])) {
      throw ModelError("Platform: processor speed must be finite and > 0 (P_" +
                       std::to_string(u) + ")");
    }
  }
}

void checkBandwidth(Real b, const char* what) {
  if (!(b > Real(0)) || !std::isfinite(b)) {
    throw ModelError(std::string("Platform: ") + what + " must be finite and > 0");
  }
}

}  // namespace

Platform::Platform(std::vector<Real> speeds, Real bandwidth)
    : speeds_(std::move(speeds)), uniformBw_(bandwidth) {
  checkSpeeds(speeds_);
  checkBandwidth(uniformBw_, "link bandwidth");
}

Platform Platform::homogeneous(std::size_t p, Real speed, Real bandwidth) {
  return Platform(std::vector<Real>(p, speed), bandwidth);
}

Platform Platform::fullyHeterogeneous(std::vector<Real> speeds, std::vector<Real> linkBandwidth,
                                      std::vector<Real> inputBandwidth,
                                      std::vector<Real> outputBandwidth) {
  checkSpeeds(speeds);
  const std::size_t p = speeds.size();
  if (linkBandwidth.size() != p * p) {
    throw ModelError("Platform: link bandwidth matrix must be p*p");
  }
  if (inputBandwidth.size() != p || outputBandwidth.size() != p) {
    throw ModelError("Platform: world link bandwidth vectors must have p entries");
  }
  for (std::size_t u = 0; u < p; ++u) {
    for (std::size_t v = 0; v < p; ++v) {
      if (u != v) checkBandwidth(linkBandwidth[u * p + v], "link bandwidth");
    }
    checkBandwidth(inputBandwidth[u], "input bandwidth");
    checkBandwidth(outputBandwidth[u], "output bandwidth");
  }
  Platform pf;
  pf.speeds_ = std::move(speeds);
  pf.linkBw_ = std::move(linkBandwidth);
  pf.inBw_ = std::move(inputBandwidth);
  pf.outBw_ = std::move(outputBandwidth);
  return pf;
}

bool Platform::isFullyHomogeneous() const noexcept {
  if (!isCommHomogeneous()) return false;
  return std::all_of(speeds_.begin(), speeds_.end(),
                     [&](Real s) { return nearlyEqual(s, speeds_.front()); });
}

Real Platform::bandwidth() const {
  if (!isCommHomogeneous()) {
    throw ModelError("Platform::bandwidth(): platform is fully heterogeneous; "
                     "use bandwidth(u, v)");
  }
  return uniformBw_;
}

Real Platform::bandwidth(std::size_t u, std::size_t v) const {
  if (u >= processorCount() || v >= processorCount()) {
    throw ModelError("Platform::bandwidth(u,v): processor index out of range");
  }
  if (u == v) {
    throw ModelError("Platform::bandwidth(u,v): intra-processor communication is free; "
                     "no link exists");
  }
  if (isCommHomogeneous()) return uniformBw_;
  return linkBw_[u * processorCount() + v];
}

Real Platform::inputBandwidth(std::size_t u) const {
  if (u >= processorCount()) {
    throw ModelError("Platform::inputBandwidth: processor index out of range");
  }
  return isCommHomogeneous() ? uniformBw_ : inBw_[u];
}

Real Platform::outputBandwidth(std::size_t u) const {
  if (u >= processorCount()) {
    throw ModelError("Platform::outputBandwidth: processor index out of range");
  }
  return isCommHomogeneous() ? uniformBw_ : outBw_[u];
}

std::size_t Platform::fastestProcessor() const {
  std::size_t best = 0;
  for (std::size_t u = 1; u < speeds_.size(); ++u) {
    if (speeds_[u] > speeds_[best]) best = u;
  }
  return best;
}

std::vector<std::size_t> Platform::processorsBySpeed() const {
  std::vector<std::size_t> order(processorCount());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return speeds_[a] > speeds_[b]; });
  return order;
}

std::string Platform::describe() const {
  std::ostringstream os;
  os << "Platform(p=" << processorCount()
     << (isCommHomogeneous() ? ", comm-homogeneous b=" : ", fully heterogeneous");
  if (isCommHomogeneous()) os << uniformBw_;
  os << ", s_max=" << maxSpeed() << ")";
  return os.str();
}

}  // namespace pipesched::core
