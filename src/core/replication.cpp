#include "pipesched/core/replication.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace pipesched::core {

namespace {

void checkOrdering(const std::vector<ReplicatedAssignment>& parts) {
  for (std::size_t j = 0; j < parts.size(); ++j) {
    if (parts[j].processors.empty()) {
      throw MappingError("ReplicatedMapping: empty replica set at interval " +
                         std::to_string(j));
    }
    const Interval& iv = parts[j].interval;
    if (iv.last < iv.first) {
      throw MappingError("ReplicatedMapping: interval " + std::to_string(j) + " is empty");
    }
    if (j > 0 && iv.first != parts[j - 1].interval.last + 1) {
      throw MappingError("ReplicatedMapping: interval " + std::to_string(j) +
                         " does not start right after its predecessor");
    }
  }
}

}  // namespace

ReplicatedMapping::ReplicatedMapping(std::vector<ReplicatedAssignment> assignments)
    : parts_(std::move(assignments)) {
  checkOrdering(parts_);
}

ReplicatedMapping ReplicatedMapping::fromIntervalMapping(const IntervalMapping& mapping) {
  std::vector<ReplicatedAssignment> parts;
  parts.reserve(mapping.intervalCount());
  for (const Assignment& a : mapping.assignments()) {
    parts.push_back(ReplicatedAssignment{a.interval, {a.processor}});
  }
  return ReplicatedMapping(std::move(parts));
}

void ReplicatedMapping::addReplica(std::size_t j, std::size_t processor) {
  if (j >= parts_.size()) {
    throw MappingError("ReplicatedMapping::addReplica: interval index out of range");
  }
  parts_[j].processors.push_back(processor);
}

void ReplicatedMapping::replaceInterval(std::size_t j,
                                        const std::vector<ReplicatedAssignment>& replacement) {
  if (j >= parts_.size()) {
    throw MappingError("ReplicatedMapping::replaceInterval: interval index out of range");
  }
  if (replacement.empty()) {
    throw MappingError("ReplicatedMapping::replaceInterval: empty replacement");
  }
  const Interval victim = parts_[j].interval;
  if (replacement.front().interval.first != victim.first ||
      replacement.back().interval.last != victim.last) {
    throw MappingError("ReplicatedMapping::replaceInterval: replacement does not tile");
  }
  parts_.erase(parts_.begin() + static_cast<std::ptrdiff_t>(j));
  parts_.insert(parts_.begin() + static_cast<std::ptrdiff_t>(j), replacement.begin(),
                replacement.end());
  checkOrdering(parts_);
}

void ReplicatedMapping::validate(std::size_t stageCount, std::size_t processorCount) const {
  if (parts_.empty()) throw MappingError("ReplicatedMapping: empty mapping");
  if (parts_.front().interval.first != 0) {
    throw MappingError("ReplicatedMapping: first interval must start at stage 0");
  }
  checkOrdering(parts_);
  if (parts_.back().interval.last != stageCount - 1) {
    throw MappingError("ReplicatedMapping: last interval must end at stage n-1");
  }
  std::unordered_set<std::size_t> used;
  std::size_t total = 0;
  for (const ReplicatedAssignment& a : parts_) {
    for (std::size_t u : a.processors) {
      if (u >= processorCount) {
        throw MappingError("ReplicatedMapping: processor index out of range");
      }
      if (!used.insert(u).second) {
        throw MappingError("ReplicatedMapping: processor " + std::to_string(u) +
                           " used twice");
      }
      ++total;
    }
  }
  if (total > processorCount) {
    throw MappingError("ReplicatedMapping: more replicas than processors");
  }
}

std::string ReplicatedMapping::describe() const {
  std::ostringstream os;
  for (std::size_t j = 0; j < parts_.size(); ++j) {
    if (j > 0) os << " | ";
    os << "[" << parts_[j].interval.first << "," << parts_[j].interval.last << "]->{";
    for (std::size_t r = 0; r < parts_[j].processors.size(); ++r) {
      os << (r ? "," : "") << "P" << parts_[j].processors[r];
    }
    os << "}";
  }
  return os.str();
}

Real replicatedIntervalPeriod(const Evaluator& eval, const ReplicatedMapping& mapping,
                              std::size_t j) {
  const ReplicatedAssignment& a = mapping.assignment(j);
  Real worstCycle = 0;
  for (std::size_t u : a.processors) {
    worstCycle = std::max(worstCycle, eval.cycleTime(a.interval, u));
  }
  return worstCycle / static_cast<Real>(a.processors.size());
}

Metrics evaluateReplicated(const Evaluator& eval, const ReplicatedMapping& mapping) {
  if (mapping.empty()) throw MappingError("evaluateReplicated: empty mapping");
  const Real b = eval.platform().bandwidth();  // comm-homogeneous only
  Metrics m;
  for (std::size_t j = 0; j < mapping.intervalCount(); ++j) {
    const ReplicatedAssignment& a = mapping.assignment(j);
    const Real periodJ = replicatedIntervalPeriod(eval, mapping, j);
    if (periodJ > m.period) {
      m.period = periodJ;
      m.bottleneckInterval = j;
    }
    // Latency: the worst data set is served by the slowest replica.
    Real slowest = kInfinity;
    for (std::size_t u : a.processors) {
      slowest = std::min(slowest, eval.platform().speed(u));
    }
    m.latency += eval.pipeline().comm(a.interval.first) / b +
                 eval.pipeline().workSum(a.interval.first, a.interval.last) / slowest;
  }
  m.latency += eval.pipeline().comm(eval.pipeline().stageCount()) / b;
  return m;
}

}  // namespace pipesched::core
