#include "pipesched/core/evaluation.hpp"

#include <algorithm>

namespace pipesched::core {

Evaluator::Evaluator(const Pipeline& pipeline, const Platform& platform, CommModel model)
    : pipe_(&pipeline), plat_(&platform), model_(model) {}

CycleBreakdown Evaluator::breakdown(const IntervalMapping& mapping, std::size_t j) const {
  const Assignment& a = mapping.assignment(j);
  const std::size_t u = a.processor;
  CycleBreakdown out;
  out.compute = computeTime(a.interval, u);

  const Real deltaIn = pipe_->comm(a.interval.first);
  const Real deltaOut = pipe_->comm(a.interval.last + 1);

  // Incoming link: from the previous interval's processor, or the outside
  // world for the first interval. Zero-size transfers cost nothing even on
  // a heterogeneous platform.
  if (deltaIn > Real(0)) {
    const Real bIn = (j == 0) ? plat_->inputBandwidth(u)
                              : plat_->bandwidth(mapping.processor(j - 1), u);
    out.input = deltaIn / bIn;
  }
  if (deltaOut > Real(0)) {
    const Real bOut = (j + 1 == mapping.intervalCount())
                          ? plat_->outputBandwidth(u)
                          : plat_->bandwidth(u, mapping.processor(j + 1));
    out.output = deltaOut / bOut;
  }
  return out;
}

Real Evaluator::intervalCycle(const IntervalMapping& mapping, std::size_t j) const {
  const CycleBreakdown b = breakdown(mapping, j);
  return model_ == CommModel::kSequential ? b.sequential() : b.overlapped();
}

Real Evaluator::cycleTime(Interval iv, std::size_t proc) const {
  const Real b = plat_->bandwidth();  // throws on fully-heterogeneous platforms
  CycleBreakdown bd;
  bd.input = pipe_->comm(iv.first) / b;
  bd.compute = computeTime(iv, proc);
  bd.output = pipe_->comm(iv.last + 1) / b;
  return model_ == CommModel::kSequential ? bd.sequential() : bd.overlapped();
}

Real Evaluator::computeTime(Interval iv, std::size_t proc) const {
  return pipe_->workSum(iv.first, iv.last) / plat_->speed(proc);
}

Real Evaluator::period(const IntervalMapping& mapping) const {
  return evaluate(mapping).period;
}

Real Evaluator::latency(const IntervalMapping& mapping) const {
  return evaluate(mapping).latency;
}

Metrics Evaluator::evaluate(const IntervalMapping& mapping) const {
  if (mapping.empty()) throw MappingError("Evaluator::evaluate: empty mapping");
  Metrics m;
  m.period = Real(0);
  m.latency = Real(0);
  for (std::size_t j = 0; j < mapping.intervalCount(); ++j) {
    const CycleBreakdown b = breakdown(mapping, j);
    const Real cycle = model_ == CommModel::kSequential ? b.sequential() : b.overlapped();
    if (cycle > m.period) {
      m.period = cycle;
      m.bottleneckInterval = j;
    }
    // Eq. (2): every interval pays its input communication and its compute
    // phase; the very last output (delta_n) is added once below.
    m.latency += b.input + b.compute;
    if (j + 1 == mapping.intervalCount()) m.latency += b.output;
  }
  return m;
}

std::vector<Real> Evaluator::cycles(const IntervalMapping& mapping) const {
  std::vector<Real> out(mapping.intervalCount());
  for (std::size_t j = 0; j < mapping.intervalCount(); ++j) {
    out[j] = intervalCycle(mapping, j);
  }
  return out;
}

Real Evaluator::optimalLatency() const {
  return latency(optimalLatencyMapping());
}

IntervalMapping Evaluator::optimalLatencyMapping() const {
  const std::size_t n = pipe_->stageCount();
  if (plat_->isCommHomogeneous()) {
    return IntervalMapping::singleInterval(n, plat_->fastestProcessor());
  }
  // Fully-heterogeneous extension: the best single processor accounts for its
  // world links, so scan all of them.
  std::size_t best = 0;
  Real bestLatency = kInfinity;
  for (std::size_t u = 0; u < plat_->processorCount(); ++u) {
    const IntervalMapping candidate = IntervalMapping::singleInterval(n, u);
    const Real l = latency(candidate);
    if (l < bestLatency) {
      bestLatency = l;
      best = u;
    }
  }
  return IntervalMapping::singleInterval(n, best);
}

}  // namespace pipesched::core
