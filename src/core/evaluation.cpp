#include "pipesched/core/evaluation.hpp"

#include <algorithm>

namespace pipesched::core {

Evaluator::Evaluator(const Pipeline& pipeline, const Platform& platform, CommModel model)
    : pipe_(&pipeline), plat_(&platform), model_(model) {}

CycleBreakdown Evaluator::breakdown(const IntervalMapping& mapping, std::size_t j) const {
  std::size_t prev = 0;
  std::size_t next = 0;
  const std::size_t* prevProc = nullptr;
  const std::size_t* nextProc = nullptr;
  if (j > 0) {
    prev = mapping.processor(j - 1);
    prevProc = &prev;
  }
  if (j + 1 < mapping.intervalCount()) {
    next = mapping.processor(j + 1);
    nextProc = &next;
  }
  return breakdown(mapping.assignment(j), prevProc, nextProc);
}

CycleBreakdown Evaluator::breakdown(const Assignment& a, const std::size_t* prevProc,
                                    const std::size_t* nextProc) const {
  const std::size_t u = a.processor;
  CycleBreakdown out;
  out.compute = computeTime(a.interval, u);

  const Real deltaIn = pipe_->comm(a.interval.first);
  const Real deltaOut = pipe_->comm(a.interval.last + 1);

  // Incoming link: from the previous interval's processor, or the outside
  // world for the first interval. Zero-size transfers cost nothing even on
  // a heterogeneous platform.
  if (deltaIn > Real(0)) {
    const Real bIn = (prevProc == nullptr) ? plat_->inputBandwidth(u)
                                           : plat_->bandwidth(*prevProc, u);
    out.input = deltaIn / bIn;
  }
  if (deltaOut > Real(0)) {
    const Real bOut = (nextProc == nullptr) ? plat_->outputBandwidth(u)
                                            : plat_->bandwidth(u, *nextProc);
    out.output = deltaOut / bOut;
  }
  return out;
}

Real Evaluator::intervalCycle(const IntervalMapping& mapping, std::size_t j) const {
  return cycleOf(breakdown(mapping, j));
}

Real Evaluator::cycleTime(Interval iv, std::size_t proc) const {
  const Real b = plat_->bandwidth();  // throws on fully-heterogeneous platforms
  CycleBreakdown bd;
  bd.input = pipe_->comm(iv.first) / b;
  bd.compute = computeTime(iv, proc);
  bd.output = pipe_->comm(iv.last + 1) / b;
  return model_ == CommModel::kSequential ? bd.sequential() : bd.overlapped();
}

Real Evaluator::computeTime(Interval iv, std::size_t proc) const {
  return pipe_->workSum(iv.first, iv.last) / plat_->speed(proc);
}

Real Evaluator::period(const IntervalMapping& mapping) const {
  return evaluate(mapping).period;
}

Real Evaluator::latency(const IntervalMapping& mapping) const {
  return evaluate(mapping).latency;
}

Metrics Evaluator::evaluate(const IntervalMapping& mapping) const {
  return evaluate(mapping.assignments());
}

Metrics Evaluator::evaluate(const std::vector<Assignment>& parts) const {
  if (parts.empty()) throw MappingError("Evaluator::evaluate: empty mapping");
  const std::size_t count = parts.size();
  Metrics m;
  m.period = Real(0);
  m.latency = Real(0);
  for (std::size_t j = 0; j < count; ++j) {
    const std::size_t* prevProc = j > 0 ? &parts[j - 1].processor : nullptr;
    const std::size_t* nextProc = j + 1 < count ? &parts[j + 1].processor : nullptr;
    const CycleBreakdown b = breakdown(parts[j], prevProc, nextProc);
    const Real cycle = cycleOf(b);
    if (cycle > m.period) {
      m.period = cycle;
      m.bottleneckInterval = j;
    }
    // Eq. (2): every interval pays its input communication and its compute
    // phase; the very last output (delta_n) is added once below.
    m.latency += b.input + b.compute;
    if (j + 1 == count) m.latency += b.output;
  }
  return m;
}

std::vector<Real> Evaluator::cycles(const IntervalMapping& mapping) const {
  std::vector<Real> out;
  cycles(mapping, out);
  return out;
}

void Evaluator::cycles(const IntervalMapping& mapping, std::vector<Real>& out) const {
  out.resize(mapping.intervalCount());
  for (std::size_t j = 0; j < mapping.intervalCount(); ++j) {
    out[j] = cycleOf(breakdown(mapping, j));
  }
}

Real Evaluator::optimalLatency() const {
  return latency(optimalLatencyMapping());
}

IntervalMapping Evaluator::optimalLatencyMapping() const {
  const std::size_t n = pipe_->stageCount();
  if (plat_->isCommHomogeneous()) {
    return IntervalMapping::singleInterval(n, plat_->fastestProcessor());
  }
  // Fully-heterogeneous extension: the best single processor accounts for its
  // world links, so scan all of them.
  std::size_t best = 0;
  Real bestLatency = kInfinity;
  for (std::size_t u = 0; u < plat_->processorCount(); ++u) {
    const IntervalMapping candidate = IntervalMapping::singleInterval(n, u);
    const Real l = latency(candidate);
    if (l < bestLatency) {
      bestLatency = l;
      best = u;
    }
  }
  return IntervalMapping::singleInterval(n, best);
}

}  // namespace pipesched::core
