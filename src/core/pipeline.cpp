#include "pipesched/core/pipeline.hpp"

#include <numeric>
#include <sstream>

namespace pipesched::core {

Pipeline::Pipeline(std::vector<Real> work, std::vector<Real> comm)
    : work_(std::move(work)), comm_(std::move(comm)) {
  if (work_.empty()) {
    throw ModelError("Pipeline: needs at least one stage");
  }
  if (comm_.size() != work_.size() + 1) {
    throw ModelError("Pipeline: comm vector must have stageCount()+1 entries, got " +
                     std::to_string(comm_.size()) + " for " + std::to_string(work_.size()) +
                     " stages");
  }
  for (std::size_t k = 0; k < work_.size(); ++k) {
    if (!(work_[k] > Real(0)) || !std::isfinite(work_[k])) {
      throw ModelError("Pipeline: stage work must be finite and > 0 (stage " +
                       std::to_string(k) + ")");
    }
  }
  for (std::size_t k = 0; k < comm_.size(); ++k) {
    if (comm_[k] < Real(0) || !std::isfinite(comm_[k])) {
      throw ModelError("Pipeline: comm size must be finite and >= 0 (delta_" +
                       std::to_string(k) + ")");
    }
  }
  prefix_.resize(work_.size() + 1, Real(0));
  std::partial_sum(work_.begin(), work_.end(), prefix_.begin() + 1);
}

Pipeline Pipeline::uniform(std::size_t n, Real w, Real d) {
  return Pipeline(std::vector<Real>(n, w), std::vector<Real>(n + 1, d));
}

Real Pipeline::workSum(std::size_t first, std::size_t last) const {
  if (first > last || last >= work_.size()) {
    throw ModelError("Pipeline::workSum: bad stage range [" + std::to_string(first) + ", " +
                     std::to_string(last) + "] for n=" + std::to_string(work_.size()));
  }
  return prefix_[last + 1] - prefix_[first];
}

std::string Pipeline::describe() const {
  std::ostringstream os;
  os << "Pipeline(n=" << stageCount() << ", W=" << totalWork() << ")";
  return os.str();
}

}  // namespace pipesched::core
