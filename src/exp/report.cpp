#include "pipesched/exp/report.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace pipesched::exp {

std::string formatReal(Real value, int precision) {
  if (std::isnan(value)) return "n/a";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void TextTable::setHeader(std::vector<std::string> header) { header_ = std::move(header); }

void TextTable::addRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void TextTable::print(std::ostream& os) const {
  // Column widths over header + rows.
  std::vector<std::size_t> widths;
  const auto grow = [&](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t c = 0; c < cells.size(); ++c) {
      widths[c] = std::max(widths[c], cells[c].size());
    }
  };
  grow(header_);
  for (const auto& row : rows_) grow(row);

  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
}

void TextTable::printMarkdown(std::ostream& os) const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  if (columns == 0) return;

  const auto escape = [](const std::string& cell) {
    std::string out;
    out.reserve(cell.size());
    for (const char c : cell) {
      if (c == '|') out += "\\|";
      else out.push_back(c);
    }
    return out;
  };
  const auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < columns; ++c) {
      os << ' ' << (c < cells.size() ? escape(cells[c]) : std::string()) << " |";
    }
    os << '\n';
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < columns; ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

void TextTable::printCsv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace pipesched::exp
