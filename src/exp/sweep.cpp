#include "pipesched/exp/sweep.hpp"

#include <cmath>
#include <limits>
#include <ostream>

#include "pipesched/exp/aggregate.hpp"
#include "pipesched/exp/report.hpp"
#include "pipesched/heuristics/splitting_engine.hpp"

namespace pipesched::exp {

namespace {

using core::Evaluator;
using heuristics::Objective;
using workload::InstancePair;
using workload::Rng;

constexpr Real kNaN = std::numeric_limits<Real>::quiet_NaN();

std::uint64_t mixSeed(std::uint64_t seed, workload::ExperimentKind kind, std::size_t n,
                      std::size_t p) {
  return seed ^ (static_cast<std::uint64_t>(kind) + 1) * 0x9E3779B97F4A7C15ULL ^
         static_cast<std::uint64_t>(n) * 0xC2B2AE3D27D4EB4FULL ^
         static_cast<std::uint64_t>(p) * 0x165667B19E3779F9ULL;
}

std::vector<InstancePair> makeInstances(workload::ExperimentKind kind, std::size_t n,
                                        std::size_t p, std::size_t pairs, std::uint64_t seed) {
  Rng base(mixSeed(seed, kind, n, p));
  std::vector<InstancePair> out;
  out.reserve(pairs);
  for (std::size_t i = 0; i < pairs; ++i) {
    Rng pairRng = base.fork(i);
    out.push_back(workload::randomInstance(kind, n, p, pairRng));
  }
  return out;
}

std::vector<Real> linearGrid(Real lo, Real hi, std::size_t points) {
  if (points == 0) return {};
  if (!(hi > lo) || points == 1) return {lo};
  std::vector<Real> grid(points);
  for (std::size_t i = 0; i < points; ++i) {
    grid[i] = lo + (hi - lo) * static_cast<Real>(i) / static_cast<Real>(points - 1);
  }
  return grid;
}

}  // namespace

SweepResult runBiCriteriaSweep(const SweepConfig& config) {
  SweepResult result;
  result.config = config;

  const std::vector<InstancePair> instances =
      makeInstances(config.kind, config.stages, config.processors, config.pairs, config.seed);
  const auto heuristicSet = heuristics::makeAllHeuristics();

  // Per-pair anchors for the threshold grids.
  std::vector<Real> initialPeriods;   // period of the Lemma-1 mapping
  std::vector<Real> optimalLatencies; // Lemma-1 latency
  std::vector<Real> bestPeriods;      // lowest failure threshold over H1..H4
  std::vector<Real> exhaustLatencies; // latency of the run-to-exhaustion H1
  for (const InstancePair& inst : instances) {
    const Evaluator eval(inst.pipeline, inst.platform, config.model);
    const core::IntervalMapping initial = eval.optimalLatencyMapping();
    initialPeriods.push_back(eval.period(initial));
    optimalLatencies.push_back(eval.latency(initial));

    Real best = kInfinity;
    for (const auto& h : heuristicSet) {
      if (h->objective() == Objective::kMinLatencyForPeriod) {
        best = std::min(best, h->failureThreshold(eval));
      }
    }
    bestPeriods.push_back(best);

    heuristics::EngineConfig exhaust;
    exhaust.rule = heuristics::SelectionRule::kMonoMax;
    exhaust.arity = heuristics::SplitArity::kTwo;
    exhaustLatencies.push_back(runSplittingEngine(eval, exhaust).metrics.latency);
  }

  const std::vector<Real> periodGrid =
      linearGrid(mean(bestPeriods), mean(initialPeriods), config.points);
  const std::vector<Real> latencyGrid =
      linearGrid(mean(optimalLatencies), mean(exhaustLatencies), config.points);

  for (const auto& h : heuristicSet) {
    HeuristicSeries series;
    series.heuristic = h->name();
    series.paperName = h->paperName();
    series.objective = h->objective();
    const bool periodFamily = h->objective() == Objective::kMinLatencyForPeriod;
    const std::vector<Real>& grid = periodFamily ? periodGrid : latencyGrid;
    for (Real threshold : grid) {
      SeriesPoint point;
      point.attempts = instances.size();
      std::vector<Real> achieved;
      for (const InstancePair& inst : instances) {
        const Evaluator eval(inst.pipeline, inst.platform, config.model);
        const heuristics::Result r = h->run(eval, threshold);
        if (!r.success) continue;
        ++point.successes;
        achieved.push_back(periodFamily ? r.metrics.latency : r.metrics.period);
      }
      if (periodFamily) {
        point.x = threshold;
        point.y = point.successes ? mean(achieved) : kNaN;
      } else {
        point.x = point.successes ? mean(achieved) : kNaN;
        point.y = threshold;
      }
      series.points.push_back(point);
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

FailureThresholdReport failureThresholds(workload::ExperimentKind kind,
                                         const std::vector<std::size_t>& stageCounts,
                                         std::size_t processors, std::size_t pairs,
                                         std::uint64_t seed) {
  FailureThresholdReport report;
  report.kind = kind;
  report.processors = processors;
  report.pairs = pairs;
  report.stageCounts = stageCounts;

  const auto heuristicSet = heuristics::makeAllHeuristics();
  for (const auto& h : heuristicSet) report.heuristics.push_back(h->name());
  report.meanThresholds.assign(heuristicSet.size(),
                               std::vector<Real>(stageCounts.size(), Real(0)));

  for (std::size_t ni = 0; ni < stageCounts.size(); ++ni) {
    const std::vector<InstancePair> instances =
        makeInstances(kind, stageCounts[ni], processors, pairs, seed);
    for (std::size_t hi = 0; hi < heuristicSet.size(); ++hi) {
      std::vector<Real> thresholds;
      thresholds.reserve(instances.size());
      for (const InstancePair& inst : instances) {
        const Evaluator eval(inst.pipeline, inst.platform);
        thresholds.push_back(heuristicSet[hi]->failureThreshold(eval));
      }
      report.meanThresholds[hi][ni] = mean(thresholds);
    }
  }
  return report;
}

void printSweep(std::ostream& os, const SweepResult& result, const std::string& title) {
  os << "== " << title << " ==\n";
  os << "experiment " << workload::experimentName(result.config.kind) << " ("
     << workload::experimentDescription(result.config.kind) << "), n=" << result.config.stages
     << ", p=" << result.config.processors << ", " << result.config.pairs
     << " random pairs per point\n";
  os << "series: (period, latency) — threshold on the period axis for H1-H4, on the latency "
        "axis for H5-H6\n\n";
  for (const HeuristicSeries& s : result.series) {
    os << "-- " << s.heuristic << "  [\"" << s.paperName << "\"]\n";
    TextTable table;
    table.setHeader({"period", "latency", "success"});
    for (const SeriesPoint& p : s.points) {
      table.addRow({formatReal(p.x), formatReal(p.y),
                    std::to_string(p.successes) + "/" + std::to_string(p.attempts)});
    }
    table.print(os);
    os << '\n';
  }
}

void writeSweepCsv(std::ostream& os, const SweepResult& result) {
  TextTable table;
  table.setHeader({"experiment", "stages", "processors", "heuristic", "objective", "period",
                   "latency", "successes", "attempts"});
  for (const HeuristicSeries& s : result.series) {
    for (const SeriesPoint& p : s.points) {
      table.addRow({workload::experimentName(result.config.kind),
                    std::to_string(result.config.stages),
                    std::to_string(result.config.processors), s.heuristic,
                    s.objective == Objective::kMinLatencyForPeriod ? "period-fixed"
                                                                   : "latency-fixed",
                    formatReal(p.x, 6), formatReal(p.y, 6), std::to_string(p.successes),
                    std::to_string(p.attempts)});
    }
  }
  table.printCsv(os);
}

void writeSweepGnuplot(std::ostream& os, const SweepResult& result,
                       const std::string& csvFileName, const std::string& title) {
  os << "# Generated by pipesched — reproduces the paper's latency-vs-period plot style.\n";
  os << "# Render with:  gnuplot -p " << csvFileName << ".gp   (or set a terminal below)\n";
  os << "set datafile separator ','\n";
  os << "set key top right\n";
  os << "set xlabel 'Period'\n";
  os << "set ylabel 'Latency'\n";
  os << "set title '" << title << "'\n";
  os << "file = '" << csvFileName << "'\n";
  os << "plot \\\n";
  for (std::size_t s = 0; s < result.series.size(); ++s) {
    const HeuristicSeries& series = result.series[s];
    os << "  file using (strcol(4) eq '" << series.heuristic
       << "' ? column(6) : NaN):(column(7)) with linespoints title '" << series.paperName
       << "'";
    os << (s + 1 < result.series.size() ? ", \\\n" : "\n");
  }
}

void printFailureThresholds(std::ostream& os, const FailureThresholdReport& report) {
  os << "Failure thresholds (paper Table 1 layout) — experiment "
     << workload::experimentName(report.kind) << ", p=" << report.processors << ", "
     << report.pairs << " pairs\n";
  TextTable table;
  std::vector<std::string> header = {"heuristic"};
  for (std::size_t n : report.stageCounts) header.push_back("n=" + std::to_string(n));
  table.setHeader(std::move(header));
  for (std::size_t hi = 0; hi < report.heuristics.size(); ++hi) {
    std::vector<std::string> row = {report.heuristics[hi]};
    for (std::size_t ni = 0; ni < report.stageCounts.size(); ++ni) {
      row.push_back(formatReal(report.meanThresholds[hi][ni], 1));
    }
    table.addRow(std::move(row));
  }
  table.print(os);
}

}  // namespace pipesched::exp
