#include "pipesched/exp/pareto_study.hpp"

#include <algorithm>
#include <ostream>

#include "pipesched/exp/report.hpp"
#include "pipesched/heuristics/registry.hpp"

namespace pipesched::exp {

namespace {

using heuristics::Objective;

}  // namespace

ParetoStudy runParetoStudy(const core::Evaluator& eval, const ParetoStudyConfig& config) {
  if (config.pointsPerHeuristic == 0) {
    throw ModelError("runParetoStudy: pointsPerHeuristic must be >= 1");
  }
  if (config.range <= 1) throw ModelError("runParetoStudy: range must be > 1");

  ParetoStudy study;
  std::vector<core::ParetoPoint> all;
  for (const auto& h : heuristics::makeAllHeuristics()) {
    const Real lo = h->objective() == Objective::kMinLatencyForPeriod
                        ? h->failureThreshold(eval)
                        : eval.optimalLatency();
    const Real hi = lo * config.range;
    std::vector<core::ParetoPoint> points;
    for (std::size_t i = 0; i < config.pointsPerHeuristic; ++i) {
      const Real t = sweepThreshold(lo, hi, config.pointsPerHeuristic, i);
      const heuristics::Result r = h->run(eval, t);
      if (!r.success) continue;
      core::ParetoPoint p;
      p.period = r.metrics.period;
      p.latency = r.metrics.latency;
      p.mapping = r.mapping;
      points.push_back(p);
    }
    all.insert(all.end(), points.begin(), points.end());
    study.perHeuristic.push_back(HeuristicFront{h->name(), core::paretoFront(points)});
  }
  study.merged = core::paretoFront(std::move(all));
  return study;
}

Real frontLatencyAt(const std::vector<core::ParetoPoint>& front, Real period) {
  // Fronts are sorted by increasing period with decreasing latency, so the
  // best admissible latency belongs to the largest admissible period.
  Real best = kInfinity;
  for (const core::ParetoPoint& p : front) {
    if (lessOrNearlyEqual(p.period, period)) best = std::min(best, p.latency);
  }
  return best;
}

FrontGap frontGap(const std::vector<core::ParetoPoint>& reference,
                  const std::vector<core::ParetoPoint>& candidate) {
  FrontGap gap;
  std::size_t covered = 0;
  for (const core::ParetoPoint& ref : reference) {
    const Real got = frontLatencyAt(candidate, ref.period);
    if (got == kInfinity) {
      ++gap.uncovered;
      continue;
    }
    ++covered;
    const Real excess = ref.latency > 0 ? got / ref.latency - 1 : Real(0);
    gap.meanRelativeExcess += excess;
    gap.maxRelativeExcess = std::max(gap.maxRelativeExcess, excess);
  }
  if (covered > 0) gap.meanRelativeExcess /= static_cast<Real>(covered);
  return gap;
}

void printParetoStudy(std::ostream& os, const ParetoStudy& study) {
  os << "Merged heuristic Pareto front (" << study.merged.size() << " points)\n";
  TextTable table;
  table.setHeader({"period", "latency", "intervals"});
  for (const core::ParetoPoint& p : study.merged) {
    table.addRow({formatReal(p.period, 3), formatReal(p.latency, 3),
                  p.mapping ? std::to_string(p.mapping->intervalCount()) : "?"});
  }
  table.print(os);
  os << "\nPer-heuristic front sizes:\n";
  TextTable sizes;
  sizes.setHeader({"heuristic", "front points"});
  for (const HeuristicFront& f : study.perHeuristic) {
    sizes.addRow({f.heuristic, std::to_string(f.front.size())});
  }
  sizes.print(os);
}

}  // namespace pipesched::exp
