#include "pipesched/exp/aggregate.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pipesched::exp {

Real mean(const std::vector<Real>& values) {
  if (values.empty()) return Real(0);
  return std::accumulate(values.begin(), values.end(), Real(0)) /
         static_cast<Real>(values.size());
}

Summary summarize(std::vector<Real> values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.mean = mean(values);
  Real var = 0;
  for (Real v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<Real>(values.size()));
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  const std::size_t mid = values.size() / 2;
  s.median = (values.size() % 2 == 1) ? values[mid]
                                      : Real(0.5) * (values[mid - 1] + values[mid]);
  return s;
}

}  // namespace pipesched::exp
