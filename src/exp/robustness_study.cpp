#include "pipesched/exp/robustness_study.hpp"

#include <ostream>

#include "pipesched/exp/report.hpp"
#include "pipesched/heuristics/registry.hpp"

namespace pipesched::exp {

RobustnessStudy runRobustnessStudy(const core::Evaluator& eval,
                                   const RobustnessStudyConfig& config) {
  if (config.amplitudes.empty()) {
    throw ModelError("runRobustnessStudy: at least one amplitude required");
  }
  if (config.trials == 0) throw ModelError("runRobustnessStudy: trials must be >= 1");
  for (const Real a : config.amplitudes) {
    if (a < 0 || a >= 1) throw ModelError("runRobustnessStudy: amplitudes must be in [0, 1)");
  }

  RobustnessStudy study;
  study.config = config;

  for (const auto& h : heuristics::makeAllHeuristics()) {
    const Real threshold = h->failureThreshold(eval) * (1 + config.thresholdSlack);
    const heuristics::Result r = h->run(eval, threshold);

    sim::SimConfig simConfig;
    simConfig.datasetCount = config.datasetCount;
    simConfig.warmup = config.warmup;
    simConfig.releaseInterval = config.releaseFactor * r.metrics.period;

    RobustnessRow row;
    row.heuristic = h->name();
    row.nominalPeriod = r.metrics.period;
    row.nominalLatency = r.metrics.latency;
    for (const Real amplitude : config.amplitudes) {
      sim::JitterModel jitter;
      jitter.seed = config.seed;
      jitter.computeAmplitude = amplitude;
      jitter.transferAmplitude = amplitude;
      const sim::RobustnessReport rep =
          sim::measureRobustness(eval, r.mapping, simConfig, jitter, config.trials);
      row.periodDegradation.push_back(rep.periodDegradation());
      row.latencyDegradation.push_back(rep.latencyDegradation());
    }
    study.rows.push_back(std::move(row));
  }
  return study;
}

void printRobustnessStudy(std::ostream& os, const RobustnessStudy& study) {
  os << "Robustness under duration jitter (" << study.config.trials
     << " trials per cell, mean achieved period / Eq.-1 prediction)\n";
  TextTable table;
  std::vector<std::string> header = {"heuristic", "nominal period"};
  for (const Real a : study.config.amplitudes) {
    header.push_back("a=" + formatReal(a, 2));
  }
  table.setHeader(std::move(header));
  for (const RobustnessRow& row : study.rows) {
    std::vector<std::string> cells = {row.heuristic, formatReal(row.nominalPeriod, 3)};
    for (const Real d : row.periodDegradation) cells.push_back(formatReal(d, 3));
    table.addRow(std::move(cells));
  }
  table.print(os);
  os << "\nMax-latency degradation (mean over trials / Eq.-2 prediction)\n";
  TextTable lat;
  std::vector<std::string> latHeader = {"heuristic", "nominal latency"};
  for (const Real a : study.config.amplitudes) {
    latHeader.push_back("a=" + formatReal(a, 2));
  }
  lat.setHeader(std::move(latHeader));
  for (const RobustnessRow& row : study.rows) {
    std::vector<std::string> cells = {row.heuristic, formatReal(row.nominalLatency, 3)};
    for (const Real d : row.latencyDegradation) cells.push_back(formatReal(d, 3));
    lat.addRow(std::move(cells));
  }
  lat.print(os);
}

}  // namespace pipesched::exp
