#include "pipesched/stream/sink.hpp"

namespace pipesched::stream {

void writeOutcomeFields(io::JsonWriter& w, const std::string& name,
                        const service::RequestOutcome& outcome) {
  w.kv("name", name);
  // The identity travels on the outcome — no re-canonicalization here, which
  // matters on warm streams where emission competes with sub-ms cache hits.
  w.kv("fingerprint", outcome.fingerprint.hex());
  w.kv("ok", outcome.ok);
  if (!outcome.ok) {
    w.kv("error", outcome.error);
    // Deadline expiries are machine-distinguishable from parse/solve errors
    // (clients retry them differently). Emitted only when set, like `trace`
    // below, so healthy output stays byte-stable.
    if (outcome.timedOut) w.kv("timed_out", true);
    return;
  }
  w.kv("from_cache", outcome.fromCache);
  w.kv("deduped", outcome.deduped);
  w.kv("exact_used", outcome.result.exactUsed);
  w.kv("budget_exhausted", outcome.result.budgetExhausted);
  // A deadline- or failure-cut partial front is explicitly flagged — never a
  // silent truncation. Key present only when true: healthy outputs keep the
  // golden-diff / byte-identity contracts.
  if (outcome.result.degraded) w.kv("degraded", true);
  w.key("front").beginArray();
  for (const core::ParetoPoint& p : outcome.result.front) {
    w.beginObject();
    w.kv("period", p.period);
    w.kv("latency", p.latency);
    if (p.mapping) w.kv("intervals", p.mapping->intervalCount());
    w.endObject();
  }
  w.endArray();
  w.key("solvers").beginArray();
  for (const service::SolverContribution& c : outcome.result.solvers) {
    w.beginObject();
    w.kv("solver", c.solver);
    w.kv("points", c.points);
    w.kv("completed", c.completed);
    w.kv("units", c.units);
    w.kv("novel", c.novel);
    w.kv("merged", c.merged);
    w.kv("skipped", c.skipped);
    w.kv("dropped", c.dropped);
    // Work-sharing provenance (like from_cache/deduped above: depends on
    // cache state and timing; the points themselves never do).
    w.kv("reused", c.reused);
    w.kv("seeded", c.seeded);
    w.endObject();
  }
  w.endArray();
  // Per-request stage breakdown, present only when the producing path ran
  // with tracing on (--trace on): default output stays byte-stable for the
  // golden-diff and byte-identity contracts.
  if (outcome.trace != nullptr) {
    const obs::RequestTrace& trace = *outcome.trace;
    w.key("trace").beginObject();
    w.kv("total_seconds", trace.totalSeconds);
    w.key("stages").beginObject();
    for (std::size_t i = 0; i < obs::kStageCount; ++i) {
      if (trace.stageCounts[i] == 0) continue;
      w.kv(obs::stageName(static_cast<obs::Stage>(i)), trace.stageSeconds[i]);
    }
    w.endObject();
    w.key("members").beginArray();
    for (const auto& [solver, seconds] : trace.members) {
      w.beginObject();
      w.kv("solver", solver);
      w.kv("seconds", seconds);
      w.endObject();
    }
    w.endArray();
    w.endObject();
  }
}

void JsonlSink::emit(std::size_t index, const service::Request& request,
                     const service::RequestOutcome& outcome) {
  // Render the whole line first, then hand it to the guarded writer in one
  // piece — emission can never interleave mid-line with other writers (the
  // serve parse-error path) sharing the same JsonlLineWriter. The render
  // buffer is a member: clear() keeps its capacity, so warm emission makes
  // no allocations. emit() arrives only from the engine's pump thread (the
  // Sink contract), so the single buffer is safe.
  buffer_.clear();
  io::StringOutStream line(buffer_);
  io::JsonWriter w(line, /*pretty=*/false);
  w.beginObject();
  w.kv("index", index);
  if (inputLines_ != nullptr && !inputLines_->empty()) {
    w.kv("line", inputLines_->front());
    inputLines_->pop_front();
  }
  writeOutcomeFields(w, request.name, outcome);
  w.endObject();
  writer_->writeLine(buffer_);
}

}  // namespace pipesched::stream
