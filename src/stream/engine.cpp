#include "pipesched/stream/engine.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <utility>

#include "pipesched/obs/metrics.hpp"
#include "pipesched/obs/trace.hpp"

namespace pipesched::stream {

namespace {

using Clock = std::chrono::steady_clock;

/// One submitted-but-not-yet-emitted request: the pump's reorder window slot.
struct Pending {
  service::Request request;
  std::future<service::RequestOutcome> future;
};

}  // namespace

EngineStats runStream(Source& source, Sink& sink, AsyncScheduler& scheduler) {
  const Clock::time_point start = Clock::now();
  EngineStats stats;

  const StreamConfig& config = scheduler.config();
  const std::size_t window =
      config.queueCapacity + std::max<std::size_t>(config.workers, 1);

  std::deque<Pending> pending;
  std::size_t nextIndex = 0;  // stream index of pending.front()

  const auto emitFront = [&] {
    Pending slot = std::move(pending.front());
    pending.pop_front();
    const service::RequestOutcome outcome = slot.future.get();
    if (!outcome.ok) ++stats.failed;
    {
      // Registry-only span: the outcome's per-request trace was sealed when
      // the solve completed, so emission cost shows up in stage.emit rather
      // than retroactively inside breakdowns already handed out.
      obs::TraceSpan emitSpan(obs::Stage::kEmit);
      sink.emit(nextIndex++, slot.request, outcome);
    }
    ++stats.requests;
  };

  try {
    for (;;) {
      // Admission control: never hold more than `window` requests between
      // pull and emission — this, not the sink, is what bounds memory.
      while (pending.size() >= window) emitFront();
      std::optional<service::Request> request = source.next();
      if (!request) break;
      // Braced init evaluates left to right: copy for the sink first, then
      // the move into the scheduler.
      pending.push_back(Pending{*request, scheduler.submit(std::move(*request))});
      // Opportunistic in-order emission: whatever has already completed at
      // the head of the window goes out now, keeping the sink incremental.
      while (!pending.empty() &&
             pending.front().future.wait_for(std::chrono::seconds(0)) ==
                 std::future_status::ready) {
        emitFront();
      }
    }
    while (!pending.empty()) emitFront();
  } catch (...) {
    // A throwing source/sink must not leave submitted work dangling: wait
    // for every outstanding future, then rethrow.
    for (Pending& slot : pending) {
      if (slot.future.valid()) slot.future.wait();
    }
    throw;
  }

  // Futures become ready slightly before the scheduler's completion counters
  // are bumped; drain() waits on the counters, so the snapshot below is
  // settled for everything this pass submitted.
  if (obs::metricsEnabled()) {
    const obs::TraceClock::time_point drainStart = obs::TraceClock::now();
    scheduler.drain();
    static obs::Histogram& drainHist =
        obs::registry().histogram(obs::names::kDrain, obs::Unit::kNanoseconds);
    drainHist.recordSeconds(obs::secondsSince(drainStart));
  } else {
    scheduler.drain();
  }
  stats.wallSeconds = std::chrono::duration<double>(Clock::now() - start).count();
  if (stats.wallSeconds > 0 && stats.requests > 0) {
    stats.requestsPerSecond = static_cast<double>(stats.requests) / stats.wallSeconds;
  }
  stats.stream = scheduler.stats();
  return stats;
}

}  // namespace pipesched::stream
