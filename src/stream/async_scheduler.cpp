#include "pipesched/stream/async_scheduler.hpp"

#include <utility>

#include "pipesched/service/fingerprint.hpp"

namespace pipesched::stream {

AsyncScheduler::AsyncScheduler(StreamConfig config)
    : config_(std::move(config)),
      service_(config_.service),
      channel_(config_.queueCapacity) {
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

AsyncScheduler::~AsyncScheduler() { close(); }

service::RequestOutcome AsyncScheduler::solveOne(const Job& job) {
  // Never let an exception escape into a worker: a throwing solve (or
  // override) becomes a failed outcome, exactly like solveBatch's per-slot
  // error isolation.
  service::RequestOutcome outcome;
  try {
    if (config_.solveOverride) {
      outcome = config_.solveOverride(job.request);
    } else {
      outcome = service_.solve(job.request, job.identity);
    }
  } catch (const std::exception& e) {
    outcome.ok = false;
    outcome.error = e.what();
  } catch (...) {
    outcome.ok = false;
    outcome.error = "unknown exception while solving";
  }
  outcome.fingerprint = job.identity.fp;  // overrides/failures included
  return outcome;
}

void AsyncScheduler::finish(Job& job, service::RequestOutcome outcome, bool coalescedCopy) {
  // Callback first (it observes the outcome by reference), then the promise,
  // then the counters — drain()/future waiters must only unblock once the
  // user-visible completion has fully happened.
  if (job.callback) {
    try {
      job.callback(job.request, outcome);
    } catch (...) {
      std::lock_guard lock(mutex_);
      ++stats_.callbackExceptions;
    }
  }
  const bool ok = outcome.ok;
  const bool fromCache = outcome.fromCache;
  job.promise.set_value(std::move(outcome));
  {
    std::lock_guard lock(mutex_);
    ++stats_.completed;
    if (!ok) ++stats_.failed;
    else if (coalescedCopy) ++stats_.coalesced;
    else if (fromCache) ++stats_.cacheHits;
    else ++stats_.solved;
  }
  allDone_.notify_all();
}

void AsyncScheduler::workerLoop() {
  while (std::optional<Job> popped = channel_.pop()) {
    Job job = std::move(*popped);
    // Canonicalize on the worker, not in submit(): a single producer thread
    // (the engine pump, a serve loop) must not serialize the per-request
    // walk that N workers could do in parallel.
    job.identity = service::requestIdentity(job.request);
    bool ownsKey = false;
    {
      std::lock_guard lock(mutex_);
      const auto it = inflight_.find(job.identity.key);
      if (it == inflight_.end()) {
        inflight_.emplace(job.identity.key, std::vector<Job>{});
        ownsKey = true;
      } else if (it->second.size() < config_.maxCoalescedWaiters) {
        // An identical request is being solved right now: park this one on
        // it and go pop the next — its solver fulfills us when done.
        it->second.push_back(std::move(job));
        ++stats_.waitersAttached;
        continue;
      } else {
        // Waiter list at its cap: parked jobs escape the channel's capacity
        // accounting, so instead of buffering this duplicate we solve it
        // ourselves. The outcome is identical (deterministic portfolio);
        // memory stays bounded and backpressure reasserts once every
        // worker is busy.
        ++stats_.coalesceOverflow;
      }
    }
    service::RequestOutcome outcome = solveOne(job);
    std::vector<Job> waiters;
    if (ownsKey) {
      std::lock_guard lock(mutex_);
      const auto it = inflight_.find(job.identity.key);
      waiters = std::move(it->second);
      inflight_.erase(it);
    }
    for (Job& waiter : waiters) {
      service::RequestOutcome copy = outcome;
      copy.deduped = true;
      copy.fromCache = false;
      finish(waiter, std::move(copy), /*coalescedCopy=*/true);
    }
    finish(job, std::move(outcome), /*coalescedCopy=*/false);
  }
}

void AsyncScheduler::runInline(Job job) {
  job.identity = service::requestIdentity(job.request);
  finish(job, solveOne(job), /*coalescedCopy=*/false);
}

std::future<service::RequestOutcome> AsyncScheduler::submitJob(Job job) {
  std::future<service::RequestOutcome> future = job.promise.get_future();
  {
    std::lock_guard lock(mutex_);
    if (!accepting_) throw ModelError("AsyncScheduler: submit after close");
    ++stats_.submitted;
    stats_.maxInFlight =
        std::max<std::size_t>(stats_.maxInFlight, stats_.submitted - stats_.completed);
  }
  if (workers_.empty()) {
    runInline(std::move(job));
    return future;
  }
  if (!channel_.push(std::move(job))) {
    // close() raced us between the accepting_ check and the push. Roll the
    // admission back and re-wake drain() waiters: the rollback may have just
    // made completed == submitted true without any finish() left to signal it.
    {
      std::lock_guard lock(mutex_);
      --stats_.submitted;
    }
    allDone_.notify_all();
    throw ModelError("AsyncScheduler: closed while submitting");
  }
  return future;
}

std::future<service::RequestOutcome> AsyncScheduler::submit(service::Request request) {
  return submitJob(Job{std::move(request)});
}

void AsyncScheduler::submit(service::Request request, Callback callback) {
  Job job{std::move(request)};
  job.callback = std::move(callback);
  (void)submitJob(std::move(job));  // completion is reported via the callback
}

void AsyncScheduler::drain() {
  std::unique_lock lock(mutex_);
  allDone_.wait(lock, [&] { return stats_.completed == stats_.submitted; });
}

void AsyncScheduler::close() {
  {
    std::lock_guard lock(mutex_);
    accepting_ = false;
  }
  channel_.close();  // workers drain what was accepted, then exit
  // Serialize the join: a second close() (or the destructor after a user
  // close) blocks here until the first finishes, so "close returned" always
  // means "workers are gone".
  std::lock_guard joinLock(joinMutex_);
  if (joined_) return;
  for (std::thread& worker : workers_) worker.join();
  joined_ = true;
}

StreamStats AsyncScheduler::stats() const {
  StreamStats snapshot;
  {
    std::lock_guard lock(mutex_);
    snapshot = stats_;
  }
  snapshot.queue = channel_.stats();
  return snapshot;
}

}  // namespace pipesched::stream
