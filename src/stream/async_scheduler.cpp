#include "pipesched/stream/async_scheduler.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "pipesched/fault/fault.hpp"
#include "pipesched/obs/metrics.hpp"
#include "pipesched/service/fingerprint.hpp"

namespace pipesched::stream {

namespace {

/// The flagged timeout every expiry path hands to finish(): never a hang,
/// never a silent drop — ok == false, timedOut == true, explanatory error.
service::RequestOutcome timeoutOutcome(const service::Fingerprint& fp, const char* where) {
  service::RequestOutcome outcome;
  outcome.ok = false;
  outcome.timedOut = true;
  outcome.error = std::string("deadline exceeded ") + where;
  outcome.fingerprint = fp;
  return outcome;
}

}  // namespace

AsyncScheduler::AsyncScheduler(StreamConfig config)
    : config_(std::move(config)),
      service_(config_.service),
      channel_(config_.queueCapacity) {
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

AsyncScheduler::~AsyncScheduler() { close(); }

service::RequestOutcome AsyncScheduler::solveOne(const Job& job, obs::RequestTrace* trace) {
  // Never let an exception escape into a worker: a throwing solve (or
  // override) becomes a failed outcome, exactly like solveBatch's per-slot
  // error isolation.
  service::RequestOutcome outcome;
  try {
    if (config_.solveOverride) {
      const obs::TraceClock::time_point start =
          trace != nullptr ? obs::TraceClock::now() : obs::TraceClock::time_point{};
      outcome = config_.solveOverride(job.request);
      if (trace != nullptr) trace->totalSeconds += obs::secondsSince(start);
    } else {
      // The three-arg overload folds its wall time into the trace and
      // attaches it to the outcome.
      outcome = service_.solve(job.request, job.identity, trace);
    }
  } catch (const std::exception& e) {
    outcome.ok = false;
    outcome.error = e.what();
  } catch (...) {
    outcome.ok = false;
    outcome.error = "unknown exception while solving";
  }
  if (trace != nullptr && outcome.trace == nullptr) {
    // Override and exception paths: the service never consumed the trace.
    outcome.trace = std::make_shared<const obs::RequestTrace>(std::move(*trace));
  }
  outcome.fingerprint = job.identity.fp;  // overrides/failures included
  return outcome;
}

void AsyncScheduler::finish(Job& job, service::RequestOutcome outcome, bool coalescedCopy) {
  // Callback first (it observes the outcome by reference), then the promise,
  // then the counters — drain()/future waiters must only unblock once the
  // user-visible completion has fully happened.
  if (job.callback) {
    try {
      job.callback(job.request, outcome);
    } catch (...) {
      std::lock_guard lock(mutex_);
      ++stats_.callbackExceptions;
    }
  }
  const bool ok = outcome.ok;
  const bool fromCache = outcome.fromCache;
  job.promise.set_value(std::move(outcome));
  {
    std::lock_guard lock(mutex_);
    ++stats_.completed;
    if (!ok) ++stats_.failed;
    else if (coalescedCopy) ++stats_.coalesced;
    else if (fromCache) ++stats_.cacheHits;
    else ++stats_.solved;
  }
  if (coalescedCopy && obs::metricsEnabled()) {
    static obs::Counter& coalesced = obs::registry().counter(obs::names::kCoalesced);
    coalesced.add();
  }
  allDone_.notify_all();
}

void AsyncScheduler::workerLoop() {
  while (std::optional<Job> popped = channel_.pop()) {
    Job job = std::move(*popped);
    // Observability prologue: queue wait (submit -> this pop) and a sample
    // of the post-pop queue depth. `job.timed` gates the clock read, the
    // metrics flag gates the registry — both off costs two branches.
    double queueWait = 0;
    if (job.timed) queueWait = obs::secondsSince(job.enqueuedAt);
    if (obs::metricsEnabled()) {
      if (job.timed) obs::stageHistogram(obs::Stage::kQueueWait).recordSeconds(queueWait);
      static obs::Histogram& depth =
          obs::registry().histogram(obs::names::kQueueDepth, obs::Unit::kCount);
      depth.record(channel_.size());
    }
    std::optional<obs::RequestTrace> trace;
    if (obs::tracingEnabled()) {
      trace.emplace();
      trace->totalSeconds = job.request.parseSeconds + queueWait;
      if (job.request.parseSeconds > 0) {
        trace->add(obs::Stage::kParse, job.request.parseSeconds);
      }
      if (job.timed) trace->add(obs::Stage::kQueueWait, queueWait);
    }
    // Canonicalize on the worker, not in submit(): a single producer thread
    // (the engine pump, a serve loop) must not serialize the per-request
    // walk that N workers could do in parallel.
    obs::TraceSpan fingerprintSpan(obs::Stage::kFingerprint, trace ? &*trace : nullptr);
    job.identity = service::requestIdentity(job.request);
    const double fingerprintSeconds = fingerprintSpan.stop();
    if (trace) trace->totalSeconds += fingerprintSeconds;
    // A request that expired while queued is answered with a flagged timeout
    // and never solved: under saturation, burning a worker on a result
    // nobody can use anymore only pushes every later deadline over too.
    if (job.request.deadline.expired()) {
      service::RequestOutcome outcome =
          timeoutOutcome(job.identity.fp, "while queued");
      if (trace) {
        outcome.trace = std::make_shared<const obs::RequestTrace>(std::move(*trace));
      }
      if (obs::metricsEnabled()) {
        obs::registry().counter(obs::names::kTimeoutQueueExpired).add();
      }
      finish(job, std::move(outcome), /*coalescedCopy=*/false);
      continue;
    }
    bool ownsKey = false;
    {
      std::lock_guard lock(mutex_);
      const auto it = inflight_.find(job.identity.key);
      if (it == inflight_.end()) {
        inflight_.emplace(job.identity.key, std::vector<Job>{});
        ownsKey = true;
      } else if (it->second.size() < config_.maxCoalescedWaiters) {
        // An identical request is being solved right now: park this one on
        // it and go pop the next — its solver fulfills us when done.
        it->second.push_back(std::move(job));
        ++stats_.waitersAttached;
        continue;
      } else {
        // Waiter list at its cap: parked jobs escape the channel's capacity
        // accounting, so instead of buffering this duplicate we solve it
        // ourselves. The outcome is identical (deterministic portfolio);
        // memory stays bounded and backpressure reasserts once every
        // worker is busy.
        ++stats_.coalesceOverflow;
      }
    }
    service::RequestOutcome outcome = solveOne(job, trace ? &*trace : nullptr);
    std::vector<Job> waiters;
    if (ownsKey) {
      std::lock_guard lock(mutex_);
      const auto it = inflight_.find(job.identity.key);
      waiters = std::move(it->second);
      inflight_.erase(it);
    }
    for (Job& waiter : waiters) {
      // A waiter whose own deadline passed while the owner solved gets a
      // flagged timeout, not a result delivered past its deadline.
      if (waiter.request.deadline.expired()) {
        service::RequestOutcome expiredCopy =
            timeoutOutcome(job.identity.fp, "while coalesced on an in-flight solve");
        expiredCopy.trace = outcome.trace;
        if (obs::metricsEnabled()) {
          obs::registry().counter(obs::names::kTimeoutCoalescedExpired).add();
        }
        finish(waiter, std::move(expiredCopy), /*coalescedCopy=*/true);
        continue;
      }
      service::RequestOutcome copy = outcome;
      copy.deduped = true;
      copy.fromCache = false;
      finish(waiter, std::move(copy), /*coalescedCopy=*/true);
    }
    finish(job, std::move(outcome), /*coalescedCopy=*/false);
  }
}

void AsyncScheduler::runInline(Job job) {
  std::optional<obs::RequestTrace> trace;
  if (obs::tracingEnabled()) {
    trace.emplace();
    trace->totalSeconds = job.request.parseSeconds;  // no queue in inline mode
    if (job.request.parseSeconds > 0) {
      trace->add(obs::Stage::kParse, job.request.parseSeconds);
    }
  }
  obs::TraceSpan fingerprintSpan(obs::Stage::kFingerprint, trace ? &*trace : nullptr);
  job.identity = service::requestIdentity(job.request);
  const double fingerprintSeconds = fingerprintSpan.stop();
  if (trace) trace->totalSeconds += fingerprintSeconds;
  if (job.request.deadline.expired()) {
    // Inline mode has no queue, but a caller can still hand over an already
    // expired deadline — same contract as the worker path.
    service::RequestOutcome outcome = timeoutOutcome(job.identity.fp, "before solving");
    if (trace) {
      outcome.trace = std::make_shared<const obs::RequestTrace>(std::move(*trace));
    }
    if (obs::metricsEnabled()) {
      obs::registry().counter(obs::names::kTimeoutQueueExpired).add();
    }
    finish(job, std::move(outcome), /*coalescedCopy=*/false);
    return;
  }
  finish(job, solveOne(job, trace ? &*trace : nullptr), /*coalescedCopy=*/false);
}

std::future<service::RequestOutcome> AsyncScheduler::submitJob(Job job) {
  if (fault::injected(fault::sites::kSchedSubmit)) {
    throw ModelError("fault injected: sched.submit");
  }
  std::future<service::RequestOutcome> future = job.promise.get_future();
  if (obs::metricsEnabled() || obs::tracingEnabled()) {
    job.enqueuedAt = obs::TraceClock::now();
    job.timed = true;
  }
  {
    std::lock_guard lock(mutex_);
    if (!accepting_) throw ModelError("AsyncScheduler: submit after close");
    ++stats_.submitted;
    stats_.maxInFlight =
        std::max<std::size_t>(stats_.maxInFlight, stats_.submitted - stats_.completed);
  }
  if (workers_.empty()) {
    runInline(std::move(job));
    return future;
  }
  if (!channel_.push(std::move(job))) {
    // close() raced us between the accepting_ check and the push. Roll the
    // admission back and re-wake drain() waiters: the rollback may have just
    // made completed == submitted true without any finish() left to signal it.
    {
      std::lock_guard lock(mutex_);
      --stats_.submitted;
    }
    allDone_.notify_all();
    throw ModelError("AsyncScheduler: closed while submitting");
  }
  return future;
}

std::future<service::RequestOutcome> AsyncScheduler::submit(service::Request request) {
  return submitJob(Job{std::move(request)});
}

void AsyncScheduler::submit(service::Request request, Callback callback) {
  Job job{std::move(request)};
  job.callback = std::move(callback);
  (void)submitJob(std::move(job));  // completion is reported via the callback
}

bool AsyncScheduler::trySubmit(service::Request request, Callback callback) {
  // An armed `sched.submit` fault presents as admission refusal — callers
  // already handle the queue-full shed path, so injection exercises it.
  if (fault::injected(fault::sites::kSchedSubmit)) return false;
  Job job{std::move(request)};
  job.callback = std::move(callback);
  if (obs::metricsEnabled() || obs::tracingEnabled()) {
    job.enqueuedAt = obs::TraceClock::now();
    job.timed = true;
  }
  {
    std::lock_guard lock(mutex_);
    if (!accepting_) return false;
    ++stats_.submitted;
    stats_.maxInFlight =
        std::max<std::size_t>(stats_.maxInFlight, stats_.submitted - stats_.completed);
  }
  if (workers_.empty()) {
    runInline(std::move(job));
    return true;
  }
  if (!channel_.tryPush(job)) {
    // Full (or closed mid-flight): roll the admission back, exactly like the
    // blocking path's close race, and re-wake drain() waiters in case the
    // rollback just made completed == submitted.
    {
      std::lock_guard lock(mutex_);
      --stats_.submitted;
    }
    allDone_.notify_all();
    return false;
  }
  return true;
}

void AsyncScheduler::drain() {
  std::unique_lock lock(mutex_);
  allDone_.wait(lock, [&] { return stats_.completed == stats_.submitted; });
}

void AsyncScheduler::close() {
  {
    std::lock_guard lock(mutex_);
    accepting_ = false;
  }
  channel_.close();  // workers drain what was accepted, then exit
  // Serialize the join: a second close() (or the destructor after a user
  // close) blocks here until the first finishes, so "close returned" always
  // means "workers are gone".
  std::lock_guard joinLock(joinMutex_);
  if (joined_) return;
  for (std::thread& worker : workers_) worker.join();
  joined_ = true;
}

StreamStats AsyncScheduler::stats() const {
  StreamStats snapshot;
  {
    std::lock_guard lock(mutex_);
    snapshot = stats_;
  }
  snapshot.queue = channel_.stats();
  return snapshot;
}

SchedulerSnapshot AsyncScheduler::snapshot() const {
  SchedulerSnapshot snap;
  {
    // One critical section for every scheduler-owned counter: inFlight and
    // the parked-waiter tallies are derived while nothing can move.
    std::lock_guard lock(mutex_);
    snap.stream = stats_;
    snap.inFlight = stats_.submitted - stats_.completed;
    snap.inflightKeys = inflight_.size();
    for (const auto& [key, waiters] : inflight_) snap.parkedWaiters += waiters.size();
  }
  // The channel has its own lock; its size is instantaneously consistent but
  // not atomic with the block above, so clamp to the documented invariant.
  snap.queueCapacity = config_.queueCapacity;
  snap.queueDepth = std::min(channel_.size(), snap.queueCapacity);
  snap.stream.queue = channel_.stats();
  return snap;
}

}  // namespace pipesched::stream
