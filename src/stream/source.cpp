#include "pipesched/stream/source.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "pipesched/io/format.hpp"
#include "pipesched/io/json_reader.hpp"
#include "pipesched/obs/trace.hpp"

namespace pipesched::stream {

namespace {

/// Stamps the just-parsed request with its parse wall time and feeds the
/// stage.parse histogram. Callers read the clock only when observability is
/// on (the returned requests otherwise keep parseSeconds == 0).
void recordParse(service::Request& request, obs::TraceClock::time_point start) {
  request.parseSeconds = obs::secondsSince(start);
  if (obs::metricsEnabled()) {
    obs::stageHistogram(obs::Stage::kParse).recordSeconds(request.parseSeconds);
  }
}

/// Errored parse: the line's wall time still belongs in the stage.parse
/// histogram (a dirty corpus must not make parse p99 look better than it
/// is), and the error itself is counted.
void recordParseError(obs::TraceClock::time_point start) {
  if (!obs::metricsEnabled()) return;
  obs::stageHistogram(obs::Stage::kParse).recordSeconds(obs::secondsSince(start));
  static obs::Counter& errors = obs::registry().counter(obs::names::kParseErrors);
  errors.add();
}

workload::ExperimentKind kindFromString(const std::string& text) {
  if (const auto kind = workload::experimentKindFromName(text)) return *kind;
  throw std::runtime_error("unknown experiment kind '" + text + "' (expected E1..E4)");
}

// The request builder below is shared by both readers (tree-walking
// io::JsonValue and zero-copy io::LiteDocument) through these adapters, so
// field validation, defaulting and error classification are identical by
// construction — the point the differential suite then checks end to end.

std::string_view memberName(const io::JsonValue::Member& member) { return member.first; }
std::string_view memberName(const io::LiteMember& member) { return member.name; }

io::Instance parseInstanceText(const io::JsonValue& text) {
  return io::readInstanceFromString(text.asString());
}

io::Instance parseInstanceText(const io::LiteValue& text) {
  const std::string_view body = text.asString();
  return io::readInstanceInPlace(body.data(), body.size());
}

/// Builds the request from one parsed JSONL object (see source.hpp for the
/// line format). `Doc` is io::JsonValue or io::LiteDocument.
template <typename Doc>
service::Request requestFromDoc(const Doc& v, const JsonlDefaults& defaults,
                                std::size_t lineNo) {
  if (!v.isObject()) throw std::runtime_error("request line must be a JSON object");

  static const char* const known[] = {"file",   "text",  "kind",    "stages",
                                      "processors", "seed",  "name",    "points",
                                      "range",  "overlap", "deadline_ms"};
  for (std::size_t i = 0; i < v.members.size(); ++i) {
    const std::string_view name = memberName(v.members[i]);
    if (std::find_if(std::begin(known), std::end(known), [&](const char* k) {
          return name == k;
        }) == std::end(known)) {
      throw std::runtime_error("unknown field '" + std::string(name) + "'");
    }
    // First-match lookup would otherwise silently use the value every
    // standard JSON tool discards ({"stages":4,"stages":8} resolving to 4) —
    // reject repeats outright.
    for (std::size_t j = 0; j < i; ++j) {
      if (memberName(v.members[j]) == name) {
        throw std::runtime_error("duplicate field '" + std::string(name) + "'");
      }
    }
  }

  const auto* file = v.find("file");
  const auto* text = v.find("text");
  const auto* kind = v.find("kind");
  const int sources = (file != nullptr) + (text != nullptr) + (kind != nullptr);
  if (sources != 1) {
    throw std::runtime_error("exactly one of \"file\", \"text\", \"kind\" is required");
  }
  if (kind == nullptr) {
    // Generator knobs on a file/text line would be silently meaningless —
    // reject them so a client cannot believe it re-seeded a file instance.
    for (const char* generatorOnly : {"stages", "processors", "seed"}) {
      if (v.find(generatorOnly) != nullptr) {
        throw std::runtime_error(std::string("field '") + generatorOnly +
                                 "' only applies to \"kind\" lines");
      }
    }
  }

  // With a "name" member present, the default name below is either
  // overwritten by the override or the whole request is discarded when the
  // override turns out not to be a string — skip composing it either way.
  const bool nameOverridden = v.find("name") != nullptr;

  service::Request request = [&]() -> service::Request {
    if (file != nullptr) {
      const std::string path(file->asString());
      io::Instance instance = [&] {
        try {
          return io::readInstanceFromFile(path);
        } catch (const std::exception& e) {
          // Anchor the failure to the referenced file: its parse errors carry
          // file-relative line numbers that would otherwise read as positions
          // in the JSONL stream.
          throw std::runtime_error("file '" + path + "': " + e.what());
        }
      }();
      std::string name;
      if (!nameOverridden) name = instance.name.empty() ? path : std::move(instance.name);
      return {std::move(instance.pipeline), std::move(instance.platform), defaults.model,
              defaults.sweep, std::move(name)};
    }
    if (text != nullptr) {
      io::Instance instance = [&] {
        try {
          return parseInstanceText(*text);
        } catch (const std::exception& e) {
          throw std::runtime_error(std::string("inline instance text: ") + e.what());
        }
      }();
      std::string name;
      if (!nameOverridden) {
        name = instance.name.empty() ? "line-" + std::to_string(lineNo)
                                     : std::move(instance.name);
      }
      return {std::move(instance.pipeline), std::move(instance.platform), defaults.model,
              defaults.sweep, std::move(name)};
    }
    const workload::ExperimentKind k = kindFromString(std::string(kind->asString()));
    const auto* stages = v.find("stages");
    const auto* processors = v.find("processors");
    if (stages == nullptr || processors == nullptr) {
      throw std::runtime_error("\"kind\" lines require \"stages\" and \"processors\"");
    }
    const std::size_t n = stages->asSize();
    const std::size_t p = processors->asSize();
    const auto* seed = v.find("seed");
    const std::uint64_t s = seed != nullptr ? seed->asU64() : 20070628ull;
    workload::Rng rng(s);
    workload::InstancePair pair = workload::randomInstance(k, n, p, rng);
    std::string name;
    if (!nameOverridden) {
      std::ostringstream composed;
      composed << workload::experimentName(k) << "-n" << n << 'p' << p << "-s" << s;
      name = std::move(composed).str();
    }
    return {std::move(pair.pipeline), std::move(pair.platform), defaults.model,
            defaults.sweep, std::move(name)};
  }();

  if (const auto* name = v.find("name")) request.name = std::string(name->asString());
  if (const auto* points = v.find("points")) request.sweep.points = points->asSize();
  if (const auto* range = v.find("range")) {
    request.sweep.range = static_cast<Real>(range->asNumber());
  }
  if (const auto* overlap = v.find("overlap")) {
    request.model =
        overlap->asBool() ? core::CommModel::kOverlapped : core::CommModel::kSequential;
  }
  // Deadlines anchor at parse time: queue wait counts against them. An
  // explicit "deadline_ms" (0 allowed — it disables the default) overrides
  // the source-wide default.
  double deadlineMs = defaults.deadlineMs;
  if (const auto* deadline = v.find("deadline_ms")) {
    deadlineMs = deadline->asNumber();
    if (deadlineMs < 0) {
      throw std::runtime_error("\"deadline_ms\" must be >= 0");
    }
  }
  request.deadline = service::Deadline::in(deadlineMs);
  return request;
}

/// Strips the parser's "line 1: " prefix: it saw exactly one line, so the
/// prefix carries no information here. Errors thrown later (e.g. a malformed
/// referenced .psi file) keep their own line numbers, which are
/// file-relative and must not be stripped.
[[noreturn]] void rethrowLineLocal(const io::ParseError& e) {
  std::string message = e.what();
  if (message.rfind("line 1: ", 0) == 0) message.erase(0, 8);
  throw std::runtime_error(message);
}

service::Request requestFromJsonLine(const std::string& line, const JsonlDefaults& defaults,
                                     std::size_t lineNo) {
  const io::JsonValue v = [&] {
    try {
      return io::parseJson(line);
    } catch (const io::ParseError& e) {
      rethrowLineLocal(e);
    }
  }();
  return requestFromDoc(v, defaults, lineNo);
}

service::Request requestFromJsonLineFast(io::LiteParser& parser, const io::MutableLine& line,
                                         const JsonlDefaults& defaults, std::size_t lineNo) {
  const io::LiteDocument* doc = nullptr;
  try {
    doc = &parser.parse(line.data, line.size);
  } catch (const io::ParseError& e) {
    rethrowLineLocal(e);
  }
  return requestFromDoc(*doc, defaults, lineNo);
}

}  // namespace

std::optional<service::Request> VectorSource::next() {
  if (cursor_ >= requests_.size()) return std::nullopt;
  return std::move(requests_[cursor_++]);
}

std::vector<std::string> expandInstancePaths(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> expanded;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (!fs::is_directory(path, ec)) {
      expanded.push_back(path);  // plain file (or missing: the read will say so)
      continue;
    }
    std::vector<std::string> inDir;
    for (const fs::directory_entry& entry : fs::directory_iterator(path)) {
      if (entry.is_regular_file() && entry.path().extension() == ".psi") {
        inDir.push_back(entry.path().string());
      }
    }
    if (inDir.empty()) {
      throw std::runtime_error("no .psi instance files in directory: " + path);
    }
    std::sort(inDir.begin(), inDir.end());
    expanded.insert(expanded.end(), inDir.begin(), inDir.end());
  }
  return expanded;
}

std::optional<service::Request> FileListSource::next() {
  if (cursor_ >= paths_.size()) return std::nullopt;
  const std::string& path = paths_[cursor_++];
  const bool timed = obs::metricsEnabled() || obs::tracingEnabled();
  const obs::TraceClock::time_point start =
      timed ? obs::TraceClock::now() : obs::TraceClock::time_point{};
  const io::Instance instance = io::readInstanceFromFile(path);
  service::Request request{instance.pipeline, instance.platform, model_, sweep_,
                           instance.name.empty() ? path : instance.name};
  if (timed) recordParse(request, start);
  return request;
}

ScenarioSource::ScenarioSource(service::SweepSpec sweep, core::CommModel model)
    : scenarios_(workload::allScenarios()),
      platform_(workload::labCluster()),
      sweep_(sweep),
      model_(model) {}

std::optional<service::Request> ScenarioSource::next() {
  if (cursor_ >= scenarios_.size()) return std::nullopt;
  workload::Scenario& scenario = scenarios_[cursor_++];
  return service::Request{std::move(scenario.pipeline), platform_, model_, sweep_,
                          scenario.name};
}

std::optional<service::Request> GeneratorSource::next() {
  if (produced_ >= spec_.count) return std::nullopt;
  workload::InstancePair pair =
      workload::randomInstance(spec_.kind, spec_.stages, spec_.processors, rng_);
  std::ostringstream name;
  name << workload::experimentName(spec_.kind) << "-n" << spec_.stages << 'p'
       << spec_.processors << '-' << produced_;
  ++produced_;
  return service::Request{std::move(pair.pipeline), std::move(pair.platform), spec_.model,
                          spec_.sweep, name.str()};
}

std::optional<service::Request> JsonlSource::next() {
  return mode_ == JsonlReader::kFast ? nextFast() : nextLegacy();
}

std::optional<service::Request> JsonlSource::nextFast() {
  while (std::optional<io::MutableLine> line = lines_->next()) {
    ++lineNo_;
    const std::string_view content(line->data, line->size);
    if (content.find_first_not_of(" \t\r") == std::string_view::npos) continue;  // blank
    const bool timed = obs::metricsEnabled() || obs::tracingEnabled();
    const obs::TraceClock::time_point start =
        timed ? obs::TraceClock::now() : obs::TraceClock::time_point{};
    try {
      service::Request request = requestFromJsonLineFast(parser_, *line, defaults_, lineNo_);
      if (timed) recordParse(request, start);
      return request;
    } catch (const std::exception& e) {
      // Line-local position prefixes were already normalized inside
      // requestFromJsonLineFast; re-anchor to the stream line number only.
      recordParseError(start);
      if (!onError_) throw io::ParseError(lineNo_, e.what());
      onError_(lineNo_, e.what());
    }
  }
  return std::nullopt;
}

std::optional<service::Request> JsonlSource::nextLegacy() {
  std::string line;
  while (std::getline(*in_, line)) {
    ++lineNo_;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;  // blank
    const bool timed = obs::metricsEnabled() || obs::tracingEnabled();
    const obs::TraceClock::time_point start =
        timed ? obs::TraceClock::now() : obs::TraceClock::time_point{};
    try {
      service::Request request = requestFromJsonLine(line, defaults_, lineNo_);
      if (timed) recordParse(request, start);
      return request;
    } catch (const std::exception& e) {
      // Line-local position prefixes were already normalized inside
      // requestFromJsonLine; re-anchor to the stream line number only.
      recordParseError(start);
      if (!onError_) throw io::ParseError(lineNo_, e.what());
      onError_(lineNo_, e.what());
    }
  }
  return std::nullopt;
}

std::optional<service::Request> ChainSource::next() {
  while (cursor_ < parts_.size()) {
    if (std::optional<service::Request> request = parts_[cursor_]->next()) return request;
    ++cursor_;
  }
  return std::nullopt;
}

}  // namespace pipesched::stream
