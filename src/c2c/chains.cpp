#include "pipesched/c2c/chains.hpp"

#include <numeric>
#include <string>

namespace pipesched::c2c {

void validatePartition(const std::vector<Real>& weights, const Partition& p) {
  if (weights.empty()) throw ModelError("c2c: empty weight array");
  if (p.ends.empty()) throw ModelError("c2c: empty partition");
  std::size_t prev = 0;
  for (std::size_t k = 0; k < p.ends.size(); ++k) {
    if (p.ends[k] >= weights.size()) {
      throw ModelError("c2c: partition end out of range");
    }
    if (k > 0 && p.ends[k] <= prev) {
      throw ModelError("c2c: partition ends must be strictly increasing");
    }
    prev = p.ends[k];
  }
  if (p.ends.back() != weights.size() - 1) {
    throw ModelError("c2c: partition must cover the whole array");
  }
}

Real intervalSum(const std::vector<Real>& weights, const Partition& p, std::size_t k) {
  Real sum = 0;
  for (std::size_t i = p.first(k); i <= p.last(k); ++i) sum += weights[i];
  return sum;
}

Real bottleneck(const std::vector<Real>& weights, const Partition& p) {
  validatePartition(weights, p);
  Real worst = 0;
  for (std::size_t k = 0; k < p.intervalCount(); ++k) {
    worst = std::max(worst, intervalSum(weights, p, k));
  }
  return worst;
}

Real weightedBottleneck(const std::vector<Real>& weights, const Partition& p,
                        const std::vector<Real>& speeds) {
  validatePartition(weights, p);
  if (speeds.size() != p.intervalCount()) {
    throw ModelError("c2c: speeds must match the interval count, got " +
                     std::to_string(speeds.size()) + " for " +
                     std::to_string(p.intervalCount()) + " intervals");
  }
  Real worst = 0;
  for (std::size_t k = 0; k < p.intervalCount(); ++k) {
    if (!(speeds[k] > Real(0))) throw ModelError("c2c: speeds must be > 0");
    worst = std::max(worst, intervalSum(weights, p, k) / speeds[k]);
  }
  return worst;
}

std::vector<Real> prefixSums(const std::vector<Real>& weights) {
  std::vector<Real> out(weights.size() + 1, Real(0));
  std::partial_sum(weights.begin(), weights.end(), out.begin() + 1);
  return out;
}

}  // namespace pipesched::c2c
