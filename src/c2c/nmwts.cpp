#include "pipesched/c2c/nmwts.hpp"

#include <algorithm>
#include <numeric>

namespace pipesched::c2c {

std::int64_t NmwtsInstance::maxValue() const {
  std::int64_t best = 0;
  for (auto v : x) best = std::max(best, v);
  for (auto v : y) best = std::max(best, v);
  for (auto v : z) best = std::max(best, v);
  return best;
}

void NmwtsInstance::validate() const {
  if (x.empty()) throw ModelError("NMWTS: m must be >= 1");
  if (y.size() != x.size() || z.size() != x.size()) {
    throw ModelError("NMWTS: x, y, z must all have m entries");
  }
  for (const auto* list : {&x, &y, &z}) {
    for (auto v : *list) {
      if (v < 0) throw ModelError("NMWTS: values must be non-negative");
    }
  }
}

bool NmwtsInstance::sumsBalanced() const {
  const auto sum = [](const std::vector<std::int64_t>& v) {
    return std::accumulate(v.begin(), v.end(), std::int64_t{0});
  };
  return sum(x) + sum(y) == sum(z);
}

bool verifyNmwts(const NmwtsInstance& inst, const NmwtsSolution& sol) {
  const std::size_t m = inst.m();
  if (sol.sigma1.size() != m || sol.sigma2.size() != m) return false;
  std::vector<bool> seen1(m, false);
  std::vector<bool> seen2(m, false);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t j = sol.sigma1[i];
    const std::size_t k = sol.sigma2[i];
    if (j >= m || k >= m || seen1[j] || seen2[k]) return false;
    seen1[j] = true;
    seen2[k] = true;
    if (inst.x[i] + inst.y[j] != inst.z[k]) return false;
  }
  return true;
}

std::optional<NmwtsSolution> solveNmwts(const NmwtsInstance& inst) {
  inst.validate();
  if (!inst.sumsBalanced()) return std::nullopt;
  const std::size_t m = inst.m();
  NmwtsSolution sol;
  sol.sigma1.assign(m, 0);
  sol.sigma2.assign(m, 0);
  std::vector<bool> usedY(m, false);
  std::vector<bool> usedZ(m, false);

  const auto backtrack = [&](auto&& self, std::size_t i) -> bool {
    if (i == m) return true;
    for (std::size_t j = 0; j < m; ++j) {
      if (usedY[j]) continue;
      // Skip duplicate y values already tried at this depth.
      bool duplicate = false;
      for (std::size_t j2 = 0; j2 < j; ++j2) {
        if (!usedY[j2] && inst.y[j2] == inst.y[j]) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      const std::int64_t want = inst.x[i] + inst.y[j];
      for (std::size_t k = 0; k < m; ++k) {
        if (usedZ[k] || inst.z[k] != want) continue;
        usedY[j] = usedZ[k] = true;
        sol.sigma1[i] = j;
        sol.sigma2[i] = k;
        if (self(self, i + 1)) return true;
        usedY[j] = usedZ[k] = false;
        break;  // any z slot with the same value is equivalent
      }
    }
    return false;
  };
  if (backtrack(backtrack, 0)) return sol;
  return std::nullopt;
}

ReductionInstance buildReduction(const NmwtsInstance& inst) {
  inst.validate();
  const std::int64_t M = inst.maxValue();
  if (M < 1) {
    throw ModelError("NMWTS reduction: requires M >= 1 (all-zero instances are degenerate)");
  }
  const std::int64_t B = 2 * M;
  const std::int64_t C = 5 * M;
  const std::int64_t D = 7 * M;
  const std::size_t m = inst.m();

  ReductionInstance out;
  out.bound = Real(1);
  out.weights.reserve(static_cast<std::size_t>(M + 3) * m);
  for (std::size_t i = 0; i < m; ++i) {
    out.weights.push_back(static_cast<Real>(B + inst.x[i]));  // A_i
    for (std::int64_t one = 0; one < M; ++one) out.weights.push_back(Real(1));
    out.weights.push_back(static_cast<Real>(C));
    out.weights.push_back(static_cast<Real>(D));
  }
  out.speeds.reserve(3 * m);
  for (std::size_t i = 0; i < m; ++i) out.speeds.push_back(static_cast<Real>(B + inst.z[i]));
  for (std::size_t i = 0; i < m; ++i) {
    out.speeds.push_back(static_cast<Real>(C + M - inst.y[i]));
  }
  for (std::size_t i = 0; i < m; ++i) out.speeds.push_back(static_cast<Real>(D));
  return out;
}

HeteroSolution reductionSolution(const NmwtsInstance& inst, const NmwtsSolution& sol) {
  inst.validate();
  if (!verifyNmwts(inst, sol)) {
    throw ModelError("NMWTS reduction: solution does not certify the instance");
  }
  const std::size_t m = inst.m();
  const std::size_t M = static_cast<std::size_t>(inst.maxValue());
  const std::size_t blockLen = M + 3;

  HeteroSolution out;
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t base = i * blockLen;
    const std::size_t h = static_cast<std::size_t>(inst.y[sol.sigma1[i]]);
    // Interval 1: A_i plus h unit tasks -> processor sigma2(i) (speed B+z).
    out.partition.ends.push_back(base + h);
    out.processorOrder.push_back(sol.sigma2[i]);
    // Interval 2: remaining M-h unit tasks plus C -> processor m + sigma1(i).
    out.partition.ends.push_back(base + M + 1);
    out.processorOrder.push_back(m + sol.sigma1[i]);
    // Interval 3: the D task alone -> processor 2m + i.
    out.partition.ends.push_back(base + M + 2);
    out.processorOrder.push_back(2 * m + i);
  }
  const ReductionInstance red = buildReduction(inst);
  std::vector<Real> speedsInOrder;
  speedsInOrder.reserve(out.processorOrder.size());
  for (std::size_t proc : out.processorOrder) speedsInOrder.push_back(red.speeds[proc]);
  out.bottleneck = weightedBottleneck(red.weights, out.partition, speedsInOrder);
  return out;
}

std::optional<NmwtsSolution> extractCertificate(const NmwtsInstance& inst,
                                                const HeteroSolution& sol) {
  inst.validate();
  const std::size_t m = inst.m();
  const std::size_t M = static_cast<std::size_t>(inst.maxValue());
  const std::size_t blockLen = M + 3;
  if (sol.partition.intervalCount() != 3 * m) return std::nullopt;

  NmwtsSolution cert;
  cert.sigma1.assign(m, 0);
  cert.sigma2.assign(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t base = i * blockLen;
    const std::size_t j = 3 * i;
    // Interval 1 holds A_i and h unit tasks on a B-speed processor.
    if (sol.partition.first(j) != base) return std::nullopt;
    const std::size_t end1 = sol.partition.last(j);
    if (end1 < base || end1 > base + M) return std::nullopt;
    const std::size_t proc1 = sol.processorOrder[j];
    if (proc1 >= m) return std::nullopt;
    cert.sigma2[i] = proc1;
    // Interval 2 holds the remaining unit tasks and C on a C-speed processor.
    if (sol.partition.last(j + 1) != base + M + 1) return std::nullopt;
    const std::size_t proc2 = sol.processorOrder[j + 1];
    if (proc2 < m || proc2 >= 2 * m) return std::nullopt;
    cert.sigma1[i] = proc2 - m;
    // Interval 3 holds D alone on a D-speed processor.
    if (sol.partition.last(j + 2) != base + M + 2) return std::nullopt;
    if (sol.processorOrder[j + 2] < 2 * m) return std::nullopt;
  }
  if (!verifyNmwts(inst, cert)) return std::nullopt;
  return cert;
}

}  // namespace pipesched::c2c
