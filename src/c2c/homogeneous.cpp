#include "pipesched/c2c/homogeneous.hpp"

#include <algorithm>
#include <limits>

namespace pipesched::c2c {

namespace {

void checkInputs(const std::vector<Real>& weights, std::size_t parts) {
  if (weights.empty()) throw ModelError("c2c: empty weight array");
  if (parts == 0) throw ModelError("c2c: need at least one part");
  for (Real w : weights) {
    if (w < Real(0) || !std::isfinite(w)) {
      throw ModelError("c2c: weights must be finite and >= 0");
    }
  }
}

}  // namespace

Partition dpPartition(const std::vector<Real>& weights, std::size_t parts) {
  checkInputs(weights, parts);
  const std::size_t n = weights.size();
  // With non-negative weights, splitting an interval never increases the
  // bottleneck, so the at-most-p optimum is attained with exactly
  // m = min(p, n) non-empty intervals.
  const std::size_t m = std::min(parts, n);
  const std::vector<Real> pre = prefixSums(weights);

  // best[k][i]: minimal bottleneck splitting the first i elements into
  // exactly k non-empty intervals (i >= k). cut[k][i]: start index of the
  // last interval in an optimal split.
  std::vector<std::vector<Real>> best(m + 1, std::vector<Real>(n + 1, kInfinity));
  std::vector<std::vector<std::size_t>> cut(m + 1, std::vector<std::size_t>(n + 1, 0));

  for (std::size_t i = 1; i <= n; ++i) {
    best[1][i] = pre[i];
    cut[1][i] = 0;
  }
  for (std::size_t k = 2; k <= m; ++k) {
    for (std::size_t i = k; i <= n; ++i) {
      Real bestVal = kInfinity;
      std::size_t bestStart = k - 1;
      // Last interval covers elements [j, i); the first j use k-1 intervals.
      for (std::size_t j = k - 1; j < i; ++j) {
        const Real candidate = std::max(best[k - 1][j], pre[i] - pre[j]);
        if (candidate < bestVal) {
          bestVal = candidate;
          bestStart = j;
        }
      }
      best[k][i] = bestVal;
      cut[k][i] = bestStart;
    }
  }

  Partition out;
  out.ends.resize(m);
  std::size_t boundary = n;
  for (std::size_t k = m; k >= 1; --k) {
    out.ends[k - 1] = boundary - 1;
    boundary = cut[k][boundary];
  }
  validatePartition(weights, out);
  return out;
}

bool probe(const std::vector<Real>& weights, std::size_t parts, Real limit, Partition* out) {
  checkInputs(weights, parts);
  if (out) out->ends.clear();
  Real current = 0;
  std::size_t used = 1;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > limit + kTimeEps) return false;  // a single element exceeds the limit
    if (current + weights[i] > limit + kTimeEps) {
      if (out) out->ends.push_back(i - 1);
      ++used;
      if (used > parts) return false;
      current = 0;
    }
    current += weights[i];
  }
  if (out) out->ends.push_back(weights.size() - 1);
  return true;
}

Partition parametricPartition(const std::vector<Real>& weights, std::size_t parts) {
  checkInputs(weights, parts);
  const std::vector<Real> pre = prefixSums(weights);
  const Real total = pre.back();
  const Real maxElem = *std::max_element(weights.begin(), weights.end());

  // Binary search on the bottleneck value between the trivial lower bound
  // max(max element, total/p) and the trivial upper bound (everything in one
  // interval). The witness partition probed at the final upper bound has an
  // *achievable* bottleneck within kTimeEps of the optimum.
  Real lo = std::max(maxElem, total / static_cast<Real>(parts));
  Real hi = total;
  Partition witness;
  if (probe(weights, parts, lo, &witness)) {
    return witness;
  }
  for (int iter = 0; iter < 80 && hi - lo > kTimeEps * std::max(Real(1), hi); ++iter) {
    const Real mid = Real(0.5) * (lo + hi);
    if (probe(weights, parts, mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  if (!probe(weights, parts, hi, &witness)) {
    throw ModelError("c2c::parametricPartition: internal feasibility failure");
  }
  // Tighten: re-probe at the witness's own bottleneck, which is achievable
  // and no larger than hi.
  Partition tightened;
  if (probe(weights, parts, bottleneck(weights, witness), &tightened)) {
    witness = tightened;
  }
  validatePartition(weights, witness);
  return witness;
}

Partition greedyPartition(const std::vector<Real>& weights, std::size_t parts) {
  checkInputs(weights, parts);
  const std::size_t n = weights.size();
  const std::size_t m = std::min(parts, n);
  const std::vector<Real> pre = prefixSums(weights);
  const Real target = pre.back() / static_cast<Real>(m);
  Partition out;
  Real current = 0;
  for (std::size_t i = 0; i < n; ++i) {
    current += weights[i];
    const std::size_t remainingStages = n - i - 1;
    const std::size_t intervalsLeft = m - out.ends.size();  // including the open one
    if (remainingStages == 0) break;
    const bool mustCut = intervalsLeft > remainingStages;  // keep intervals non-empty-able
    if (out.ends.size() + 1 < m && (current >= target || mustCut)) {
      out.ends.push_back(i);
      current = 0;
    }
  }
  out.ends.push_back(n - 1);
  validatePartition(weights, out);
  return out;
}

Partition recursiveBisection(const std::vector<Real>& weights, std::size_t parts) {
  checkInputs(weights, parts);
  const std::size_t n = weights.size();
  const std::vector<Real> pre = prefixSums(weights);
  Partition out;

  const auto bisect = [&](auto&& self, std::size_t first, std::size_t last,
                          std::size_t k) -> void {
    const std::size_t len = last - first + 1;
    if (k <= 1 || len == 1) {
      out.ends.push_back(last);
      return;
    }
    const std::size_t kl = k / 2;
    const std::size_t kr = k - kl;
    const Real segTotal = pre[last + 1] - pre[first];
    const Real want = pre[first] + segTotal * static_cast<Real>(kl) / static_cast<Real>(k);
    std::size_t bestCut = first;
    Real bestDist = kInfinity;
    for (std::size_t c = first; c < last; ++c) {
      const Real dist = std::abs(pre[c + 1] - want);
      if (dist < bestDist) {
        bestDist = dist;
        bestCut = c;
      }
    }
    self(self, first, bestCut, std::min(kl, bestCut - first + 1));
    self(self, bestCut + 1, last, std::min(kr, last - bestCut));
  };
  bisect(bisect, 0, n - 1, std::min(parts, n));
  validatePartition(weights, out);
  return out;
}

Real optimalBottleneck(const std::vector<Real>& weights, std::size_t parts) {
  return bottleneck(weights, dpPartition(weights, parts));
}

}  // namespace pipesched::c2c
