#include "pipesched/c2c/heterogeneous.hpp"

#include <algorithm>
#include <numeric>

namespace pipesched::c2c {

namespace {

void checkHeteroInputs(const std::vector<Real>& weights, const std::vector<Real>& speeds) {
  if (weights.empty()) throw ModelError("c2c: empty weight array");
  if (speeds.empty()) throw ModelError("c2c: empty speed list");
  for (Real w : weights) {
    if (w < Real(0) || !std::isfinite(w)) {
      throw ModelError("c2c: weights must be finite and >= 0");
    }
  }
  for (Real s : speeds) {
    if (!(s > Real(0)) || !std::isfinite(s)) {
      throw ModelError("c2c: speeds must be finite and > 0");
    }
  }
}

}  // namespace

HeteroSolution dpWithFixedOrder(const std::vector<Real>& weights, const std::vector<Real>& speeds,
                                const std::vector<std::size_t>& speedOrder) {
  checkHeteroInputs(weights, speeds);
  if (speedOrder.size() != speeds.size()) {
    throw ModelError("c2c::dpWithFixedOrder: order must list every processor exactly once");
  }
  const std::size_t n = weights.size();
  const std::size_t p = speeds.size();
  const std::vector<Real> pre = prefixSums(weights);

  // best[k][i]: minimal bottleneck covering the first i elements with the
  // first k processors of the order (empty intervals allowed).
  // cut[k][i]: start of processor k-1's interval (== i when it is empty).
  std::vector<std::vector<Real>> best(p + 1, std::vector<Real>(n + 1, kInfinity));
  std::vector<std::vector<std::size_t>> cut(p + 1, std::vector<std::size_t>(n + 1, 0));
  best[0][0] = Real(0);
  for (std::size_t k = 1; k <= p; ++k) {
    const Real s = speeds[speedOrder[k - 1]];
    for (std::size_t i = 0; i <= n; ++i) {
      Real bestVal = kInfinity;
      std::size_t bestStart = i;
      // Processor k-1 takes elements [j, i); j == i means it takes nothing.
      for (std::size_t j = 0; j <= i; ++j) {
        if (best[k - 1][j] == kInfinity) continue;
        const Real load = (pre[i] - pre[j]) / s;
        const Real candidate = std::max(best[k - 1][j], load);
        if (candidate < bestVal) {
          bestVal = candidate;
          bestStart = j;
        }
      }
      best[k][i] = bestVal;
      cut[k][i] = bestStart;
    }
  }

  HeteroSolution out;
  out.bottleneck = best[p][n];
  // Reconstruct, dropping empty intervals.
  std::vector<std::pair<std::size_t, std::size_t>> reversed;  // (endExclusive, procIdx)
  std::size_t boundary = n;
  for (std::size_t k = p; k >= 1; --k) {
    const std::size_t start = cut[k][boundary];
    if (start != boundary) {
      reversed.emplace_back(boundary, speedOrder[k - 1]);
    }
    boundary = start;
  }
  for (auto it = reversed.rbegin(); it != reversed.rend(); ++it) {
    out.partition.ends.push_back(it->first - 1);
    out.processorOrder.push_back(it->second);
  }
  validatePartition(weights, out.partition);
  return out;
}

HeteroSolution heteroExhaustive(const std::vector<Real>& weights, const std::vector<Real>& speeds,
                                std::size_t maxProcessorsForExhaustive) {
  checkHeteroInputs(weights, speeds);
  if (speeds.size() > maxProcessorsForExhaustive) {
    throw ModelError("c2c::heteroExhaustive: too many processors (" +
                     std::to_string(speeds.size()) + " > " +
                     std::to_string(maxProcessorsForExhaustive) +
                     "); the problem is NP-hard — use a heuristic");
  }
  // Enumerate all index permutations (starting from the lexicographically
  // smallest, so std::next_permutation visits every one). Permutations that
  // merely exchange equal-speed processors yield the same speed sequence; we
  // keep only the canonical representative where, for each speed value, the
  // processor indices appear in increasing order.
  std::vector<std::size_t> order(speeds.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  HeteroSolution best;
  do {
    bool canonical = true;
    for (std::size_t k = 0; canonical && k < order.size(); ++k) {
      for (std::size_t l = k + 1; l < order.size(); ++l) {
        if (speeds[order[k]] == speeds[order[l]] && order[k] > order[l]) {
          canonical = false;
          break;
        }
      }
    }
    if (!canonical) continue;
    HeteroSolution candidate = dpWithFixedOrder(weights, speeds, order);
    if (candidate.bottleneck < best.bottleneck) {
      best = std::move(candidate);
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

HeteroSolution heteroSortedDp(const std::vector<Real>& weights, const std::vector<Real>& speeds) {
  checkHeteroInputs(weights, speeds);
  std::vector<std::size_t> order(speeds.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return speeds[a] > speeds[b]; });
  return dpWithFixedOrder(weights, speeds, order);
}

HeteroSolution heteroLocalSearch(const std::vector<Real>& weights, const std::vector<Real>& speeds,
                                 std::size_t maxIterations) {
  checkHeteroInputs(weights, speeds);
  std::vector<std::size_t> order(speeds.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return speeds[a] > speeds[b]; });

  HeteroSolution best = dpWithFixedOrder(weights, speeds, order);
  for (std::size_t sweep = 0; sweep < maxIterations; ++sweep) {
    bool improved = false;
    for (std::size_t k = 0; k + 1 < order.size(); ++k) {
      if (speeds[order[k]] == speeds[order[k + 1]]) continue;  // no-op swap
      std::swap(order[k], order[k + 1]);
      HeteroSolution candidate = dpWithFixedOrder(weights, speeds, order);
      if (candidate.bottleneck + kTimeEps < best.bottleneck) {
        best = std::move(candidate);
        improved = true;
      } else {
        std::swap(order[k], order[k + 1]);  // revert
      }
    }
    if (!improved) break;
  }
  return best;
}

Real heteroLowerBound(const std::vector<Real>& weights, const std::vector<Real>& speeds) {
  checkHeteroInputs(weights, speeds);
  const Real totalWeight = std::accumulate(weights.begin(), weights.end(), Real(0));
  const Real totalSpeed = std::accumulate(speeds.begin(), speeds.end(), Real(0));
  const Real maxSpeed = *std::max_element(speeds.begin(), speeds.end());
  // Perfect load balance across all processors, and the heaviest single
  // element must fit somewhere (best case: on the fastest processor).
  const Real maxElem = *std::max_element(weights.begin(), weights.end());
  return std::max(totalWeight / totalSpeed, maxElem / maxSpeed);
}

}  // namespace pipesched::c2c
