#include "pipesched/io/jsonl_fast.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "pipesched/io/format.hpp"

namespace pipesched::io {

// ---------------------------------------------------------------------------
// BlockLineReader

BlockLineReader::BlockLineReader(std::istream& in, std::size_t blockSize)
    : in_(&in), blockSize_(std::max<std::size_t>(blockSize, 16)) {}

void BlockLineReader::ensureRoom() {
  if (begin_ == end_) begin_ = end_ = scan_ = 0;
  if (buffer_.size() - end_ >= blockSize_) return;
  if (begin_ >= blockSize_) {
    // Reclaim the consumed prefix before growing; only worth the memmove
    // once a whole block has been consumed.
    std::memmove(buffer_.data(), buffer_.data() + begin_, end_ - begin_);
    end_ -= begin_;
    scan_ -= begin_;
    begin_ = 0;
    if (buffer_.size() - end_ >= blockSize_) return;
  }
  buffer_.resize(std::max(buffer_.size() * 2, end_ + blockSize_));
}

bool BlockLineReader::fill() {
  ensureRoom();
  std::streambuf* sb = in_->rdbuf();
  if (sb == nullptr) return false;
  char* dst = buffer_.data() + end_;
  const std::size_t room = buffer_.size() - end_;
  const std::streamsize avail = sb->in_avail();
  if (avail > 0) {
    const std::streamsize want =
        std::min(avail, static_cast<std::streamsize>(room));
    const std::streamsize got = sb->sgetn(dst, want);
    if (got <= 0) return false;
    end_ += static_cast<std::size_t>(got);
    return true;
  }
  // Nothing buffered: block for a single byte instead of a whole block, so an
  // interactive producer (serve over stdin) gets the same line-by-line
  // latency as getline. The read primes the streambuf, so the bulk path
  // above takes over on the next call.
  const int c = sb->sbumpc();
  if (c == std::char_traits<char>::eof()) return false;
  *dst = static_cast<char>(c);
  ++end_;
  return true;
}

std::optional<MutableLine> BlockLineReader::next() {
  for (;;) {
    if (scan_ < end_) {
      void* found = std::memchr(buffer_.data() + scan_, '\n', end_ - scan_);
      if (found != nullptr) {
        char* nl = static_cast<char*>(found);
        char* lineStart = buffer_.data() + begin_;
        const std::size_t lineSize = static_cast<std::size_t>(nl - lineStart);
        *nl = '\0';
        begin_ = static_cast<std::size_t>(nl - buffer_.data()) + 1;
        scan_ = begin_;
        return MutableLine{lineStart, lineSize};
      }
      scan_ = end_;
    }
    if (eof_) {
      if (begin_ == end_) return std::nullopt;
      // Final line without a trailing '\n'.
      if (end_ == buffer_.size()) buffer_.resize(end_ + 1);
      buffer_[end_] = '\0';
      MutableLine line{buffer_.data() + begin_, end_ - begin_};
      begin_ = scan_ = end_;
      return line;
    }
    if (!fill()) eof_ = true;
  }
}

// ---------------------------------------------------------------------------
// LiteValue / LiteDocument

namespace {

[[noreturn]] void typeError(const char* expected) {
  throw std::runtime_error(std::string("JSON value is not a ") + expected);
}

}  // namespace

std::string_view LiteValue::asString() const {
  if (!isString()) typeError("string");
  return text();
}

double LiteValue::asNumber() const {
  if (!isNumber()) typeError("number");
  return number;
}

bool LiteValue::asBool() const {
  if (!isBool()) typeError("boolean");
  return boolean;
}

std::size_t LiteValue::asSize() const {
  const double n = asNumber();
  // >= 2^53: the double parse may already have rounded the literal, so
  // accepting it would silently alter the client's value — reject loudly.
  if (n < 0 || n != std::floor(n) || n >= 9007199254740992.0) {
    throw std::runtime_error("JSON value is not an exactly-representable non-negative integer");
  }
  return static_cast<std::size_t>(n);
}

std::uint64_t LiteValue::asU64() const {
  const double n = asNumber();
  if (n < 0 || n != std::floor(n) || n >= 9007199254740992.0) {
    throw std::runtime_error("JSON value is not an exactly-representable non-negative integer");
  }
  return static_cast<std::uint64_t>(n);
}

const LiteValue* LiteDocument::find(std::string_view key) const noexcept {
  if (!root.isObject()) return nullptr;
  for (const LiteMember& member : members) {
    if (member.name == key) return &member.value;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// LiteParser — every production, check order and message below mirrors
// json_reader.cpp's Parser; the differential suite holds the two together.

void LiteParser::fail(const std::string& message) const {
  // The input is one newline-free line by construction, so the offending
  // character is always on line 1 — same number the tree parser computes.
  throw ParseError(1, message);
}

char LiteParser::peek() const {
  if (atEnd()) fail("unexpected end of input");
  return data_[pos_];
}

char LiteParser::take() {
  const char c = peek();
  ++pos_;
  return c;
}

void LiteParser::expect(char c, const char* what) {
  if (atEnd() || data_[pos_] != c) fail(std::string("expected ") + what);
  ++pos_;
}

void LiteParser::skipWhitespace() {
  while (!atEnd()) {
    const char c = data_[pos_];
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
    ++pos_;
  }
}

const LiteDocument& LiteParser::parse(char* data, std::size_t size) {
  data_ = data;
  size_ = size;
  pos_ = 0;
  doc_.members.clear();  // arena reuse: capacity survives across lines
  doc_.root = LiteValue{};
  skipWhitespace();
  doc_.root = parseValue(/*topLevel=*/true);
  skipWhitespace();
  if (pos_ != size_) fail("trailing characters after JSON value");
  return doc_;
}

LiteValue LiteParser::parseValue(bool topLevel) {
  switch (peek()) {
    case '{': {
      if (topLevel) {
        parseTopLevelObject();
      } else {
        skipObject();
      }
      LiteValue value;
      value.type = LiteValue::Type::kObject;
      return value;
    }
    case '[': {
      skipArray();
      LiteValue value;
      value.type = LiteValue::Type::kArray;
      return value;
    }
    case '"': {
      const std::string_view text = parseStringInPlace();
      LiteValue value;
      value.type = LiteValue::Type::kString;
      value.textData = const_cast<char*>(text.data());
      value.textSize = text.size();
      return value;
    }
    case 't': {
      if (size_ - pos_ < 4 || std::memcmp(data_ + pos_, "true", 4) != 0) {
        fail("invalid token");
      }
      pos_ += 4;
      LiteValue value;
      value.type = LiteValue::Type::kBool;
      value.boolean = true;
      return value;
    }
    case 'f': {
      if (size_ - pos_ < 5 || std::memcmp(data_ + pos_, "false", 5) != 0) {
        fail("invalid token");
      }
      pos_ += 5;
      LiteValue value;
      value.type = LiteValue::Type::kBool;
      value.boolean = false;
      return value;
    }
    case 'n': {
      if (size_ - pos_ < 4 || std::memcmp(data_ + pos_, "null", 4) != 0) {
        fail("invalid token");
      }
      pos_ += 4;
      return LiteValue{};
    }
    default: return parseNumber();
  }
}

void LiteParser::parseTopLevelObject() {
  expect('{', "'{'");
  skipWhitespace();
  if (!atEnd() && data_[pos_] == '}') {
    ++pos_;
    return;
  }
  for (;;) {
    skipWhitespace();
    if (atEnd() || data_[pos_] != '"') fail("expected object key string");
    const std::string_view key = parseStringInPlace();
    skipWhitespace();
    expect(':', "':' after object key");
    skipWhitespace();
    doc_.members.push_back({key, parseValue(/*topLevel=*/false)});
    skipWhitespace();
    const char c = take();
    if (c == '}') return;
    if (c != ',') fail("expected ',' or '}' in object");
  }
}

// Nested containers: full grammar walk (identical error behavior), but only
// the container's type survives — the request protocol has no nested fields,
// so this is exactly as much as JsonValue::as*() would ever let a caller see.
void LiteParser::skipObject() {
  expect('{', "'{'");
  skipWhitespace();
  if (!atEnd() && data_[pos_] == '}') {
    ++pos_;
    return;
  }
  for (;;) {
    skipWhitespace();
    if (atEnd() || data_[pos_] != '"') fail("expected object key string");
    parseStringInPlace();
    skipWhitespace();
    expect(':', "':' after object key");
    skipWhitespace();
    parseValue(/*topLevel=*/false);
    skipWhitespace();
    const char c = take();
    if (c == '}') return;
    if (c != ',') fail("expected ',' or '}' in object");
  }
}

void LiteParser::skipArray() {
  expect('[', "'['");
  skipWhitespace();
  if (!atEnd() && data_[pos_] == ']') {
    ++pos_;
    return;
  }
  for (;;) {
    skipWhitespace();
    parseValue(/*topLevel=*/false);
    skipWhitespace();
    const char c = take();
    if (c == ']') return;
    if (c != ',') fail("expected ',' or ']' in array");
  }
}

std::string_view LiteParser::parseStringInPlace() {
  expect('"', "'\"'");
  // Decode into the buffer being read: every escape sequence is at least as
  // long as its decoding (\n: 2 -> 1, \uXXXX: 6 -> <= 3, surrogate pair:
  // 12 -> 4), so the write cursor can never pass the read cursor. Until the
  // first escape the "copy" is a self-assignment over the same bytes.
  char* const base = data_ + pos_;
  char* out = base;
  for (;;) {
    if (atEnd()) fail("unterminated string");
    const char c = take();
    if (c == '"') return {base, static_cast<std::size_t>(out - base)};
    if (static_cast<unsigned char>(c) < 0x20) fail("unescaped control character in string");
    if (c != '\\') {
      *out++ = c;
      continue;
    }
    const char esc = take();
    switch (esc) {
      case '"': *out++ = '"'; break;
      case '\\': *out++ = '\\'; break;
      case '/': *out++ = '/'; break;
      case 'b': *out++ = '\b'; break;
      case 'f': *out++ = '\f'; break;
      case 'n': *out++ = '\n'; break;
      case 'r': *out++ = '\r'; break;
      case 't': *out++ = '\t'; break;
      case 'u': out = appendUnicodeEscape(out); break;
      default: fail("invalid escape sequence");
    }
  }
}

unsigned LiteParser::readHex4() {
  unsigned code = 0;
  for (int i = 0; i < 4; ++i) {
    const char c = take();
    code <<= 4;
    if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
    else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
    else fail("invalid \\u escape digit");
  }
  return code;
}

char* LiteParser::appendUnicodeEscape(char* out) {
  unsigned code = readHex4();
  if (code >= 0xD800 && code <= 0xDBFF) {  // high surrogate: need the pair
    if (atEnd() || take() != '\\' || atEnd() || take() != 'u') {
      fail("unpaired UTF-16 surrogate in \\u escape");
    }
    const unsigned low = readHex4();
    if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate in \\u escape");
    code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
  } else if (code >= 0xDC00 && code <= 0xDFFF) {
    fail("unpaired UTF-16 surrogate in \\u escape");
  }
  // UTF-8 encode.
  if (code < 0x80) {
    *out++ = static_cast<char>(code);
  } else if (code < 0x800) {
    *out++ = static_cast<char>(0xC0 | (code >> 6));
    *out++ = static_cast<char>(0x80 | (code & 0x3F));
  } else if (code < 0x10000) {
    *out++ = static_cast<char>(0xE0 | (code >> 12));
    *out++ = static_cast<char>(0x80 | ((code >> 6) & 0x3F));
    *out++ = static_cast<char>(0x80 | (code & 0x3F));
  } else {
    *out++ = static_cast<char>(0xF0 | (code >> 18));
    *out++ = static_cast<char>(0x80 | ((code >> 12) & 0x3F));
    *out++ = static_cast<char>(0x80 | ((code >> 6) & 0x3F));
    *out++ = static_cast<char>(0x80 | (code & 0x3F));
  }
  return out;
}

LiteValue LiteParser::parseNumber() {
  const std::size_t start = pos_;
  if (!atEnd() && data_[pos_] == '-') ++pos_;
  const auto digits = [&] {
    std::size_t n = 0;
    while (!atEnd() && data_[pos_] >= '0' && data_[pos_] <= '9') {
      ++pos_;
      ++n;
    }
    return n;
  };
  if (digits() == 0) {
    pos_ = start;
    fail("invalid token");
  }
  if (!atEnd() && data_[pos_] == '.') {
    ++pos_;
    if (digits() == 0) fail("expected digits after decimal point");
  }
  if (!atEnd() && (data_[pos_] == 'e' || data_[pos_] == 'E')) {
    ++pos_;
    if (!atEnd() && (data_[pos_] == '+' || data_[pos_] == '-')) ++pos_;
    if (digits() == 0) fail("expected digits in exponent");
  }
  // The same strtod the tree parser runs on its copied-out token, pointed at
  // the token in place. strtod needs a terminator: at end of line the reader
  // guarantees data_[size_] == '\0'; mid-line, NUL-swap the byte after the
  // token for the duration of the call.
  const std::size_t tokenEnd = pos_;
  const bool swap = tokenEnd < size_;
  const char saved = swap ? data_[tokenEnd] : '\0';
  if (swap) data_[tokenEnd] = '\0';
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(data_ + start, &end);
  if (swap) data_[tokenEnd] = saved;
  // ERANGE underflow (subnormal/zero result, e.g. 1e-310) is a valid JSON
  // number — only overflow to +/-HUGE_VAL is an error.
  const bool overflow = errno == ERANGE && (parsed == HUGE_VAL || parsed == -HUGE_VAL);
  if (end != data_ + tokenEnd || overflow) {
    pos_ = start;
    fail("number out of range");
  }
  LiteValue value;
  value.type = LiteValue::Type::kNumber;
  value.number = parsed;
  return value;
}

}  // namespace pipesched::io
