#include "pipesched/io/json_reader.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace pipesched::io {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parseDocument() {
    skipWhitespace();
    JsonValue value = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    throw ParseError(line, message);
  }

  [[nodiscard]] bool atEnd() const noexcept { return pos_ >= text_.size(); }

  [[nodiscard]] char peek() const {
    if (atEnd()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c, const char* what) {
    if (atEnd() || text_[pos_] != c) fail(std::string("expected ") + what);
    ++pos_;
  }

  void skipWhitespace() {
    while (!atEnd()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  JsonValue parseValue() {
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return parseString();
      case 't': return parseKeyword("true", [](JsonValue& v) {
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
      });
      case 'f': return parseKeyword("false", [](JsonValue& v) {
        v.type = JsonValue::Type::kBool;
        v.boolean = false;
      });
      case 'n': return parseKeyword("null", [](JsonValue& v) {
        v.type = JsonValue::Type::kNull;
      });
      default: return parseNumber();
    }
  }

  template <typename Fill>
  JsonValue parseKeyword(std::string_view word, Fill fill) {
    if (text_.substr(pos_, word.size()) != word) fail("invalid token");
    pos_ += word.size();
    JsonValue value;
    fill(value);
    return value;
  }

  JsonValue parseObject() {
    expect('{', "'{'");
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    skipWhitespace();
    if (!atEnd() && text_[pos_] == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      skipWhitespace();
      if (atEnd() || text_[pos_] != '"') fail("expected object key string");
      JsonValue key = parseString();
      skipWhitespace();
      expect(':', "':' after object key");
      skipWhitespace();
      value.members.emplace_back(std::move(key.text), parseValue());
      skipWhitespace();
      const char c = take();
      if (c == '}') return value;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parseArray() {
    expect('[', "'['");
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    skipWhitespace();
    if (!atEnd() && text_[pos_] == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      skipWhitespace();
      value.items.push_back(parseValue());
      skipWhitespace();
      const char c = take();
      if (c == ']') return value;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue parseString() {
    expect('"', "'\"'");
    JsonValue value;
    value.type = JsonValue::Type::kString;
    for (;;) {
      if (atEnd()) fail("unterminated string");
      const char c = take();
      if (c == '"') return value;
      if (static_cast<unsigned char>(c) < 0x20) fail("unescaped control character in string");
      if (c != '\\') {
        value.text.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': value.text.push_back('"'); break;
        case '\\': value.text.push_back('\\'); break;
        case '/': value.text.push_back('/'); break;
        case 'b': value.text.push_back('\b'); break;
        case 'f': value.text.push_back('\f'); break;
        case 'n': value.text.push_back('\n'); break;
        case 'r': value.text.push_back('\r'); break;
        case 't': value.text.push_back('\t'); break;
        case 'u': appendUnicodeEscape(value.text); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  unsigned readHex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape digit");
    }
    return code;
  }

  void appendUnicodeEscape(std::string& out) {
    unsigned code = readHex4();
    if (code >= 0xD800 && code <= 0xDBFF) {  // high surrogate: need the pair
      if (atEnd() || take() != '\\' || atEnd() || take() != 'u') {
        fail("unpaired UTF-16 surrogate in \\u escape");
      }
      const unsigned low = readHex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate in \\u escape");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired UTF-16 surrogate in \\u escape");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (!atEnd() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (!atEnd() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) {
      pos_ = start;
      fail("invalid token");
    }
    if (!atEnd() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("expected digits after decimal point");
    }
    if (!atEnd() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!atEnd() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("expected digits in exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    // ERANGE underflow (subnormal/zero result, e.g. 1e-310) is a valid JSON
    // number — only overflow to +/-HUGE_VAL is an error.
    const bool overflow = errno == ERANGE && (parsed == HUGE_VAL || parsed == -HUGE_VAL);
    if (end != token.c_str() + token.size() || overflow) {
      pos_ = start;
      fail("number out of range");
    }
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.number = parsed;
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void typeError(const char* expected) {
  throw std::runtime_error(std::string("JSON value is not a ") + expected);
}

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!isObject()) return nullptr;
  for (const Member& member : members) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

const std::string& JsonValue::asString() const {
  if (!isString()) typeError("string");
  return text;
}

double JsonValue::asNumber() const {
  if (!isNumber()) typeError("number");
  return number;
}

bool JsonValue::asBool() const {
  if (!isBool()) typeError("boolean");
  return boolean;
}

std::size_t JsonValue::asSize() const {
  const double n = asNumber();
  // >= 2^53: the double parse may already have rounded the literal, so
  // accepting it would silently alter the client's value — reject loudly.
  if (n < 0 || n != std::floor(n) || n >= 9007199254740992.0) {
    throw std::runtime_error("JSON value is not an exactly-representable non-negative integer");
  }
  return static_cast<std::size_t>(n);
}

std::uint64_t JsonValue::asU64() const {
  const double n = asNumber();
  if (n < 0 || n != std::floor(n) || n >= 9007199254740992.0) {
    throw std::runtime_error("JSON value is not an exactly-representable non-negative integer");
  }
  return static_cast<std::uint64_t>(n);
}

JsonValue parseJson(std::string_view text) {
  return Parser(text).parseDocument();
}

}  // namespace pipesched::io
