#include "pipesched/io/real_format.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pipesched::io {

std::string formatReal(Real value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[40];
  // Integers print as integers ("10", not "1e+01").
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", value);
    return buf;
  }
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

}  // namespace pipesched::io
