#include "pipesched/io/format.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "pipesched/io/real_format.hpp"

namespace pipesched::io {

namespace {

/// Whitespace-separated token stream with 1-based line tracking and `#`
/// end-of-line comments. Values may wrap across lines; `restOfLine` serves
/// free-text fields like `name`.
class Lexer {
 public:
  explicit Lexer(std::istream& in) : in_(in) {}

  /// Next token, or nullopt at end of input. Sets line() to the token's line.
  std::optional<std::string> next() {
    skipSpaceAndComments();
    if (peek() == EOF) return std::nullopt;
    std::string token;
    while (true) {
      const int c = peek();
      if (c == EOF || std::isspace(c) || c == '#') break;
      token.push_back(static_cast<char>(get()));
    }
    return token;
  }

  /// The remainder of the current line, leading whitespace and trailing
  /// comment stripped. Consumes through the newline.
  std::string restOfLine() {
    std::string text;
    while (peek() != EOF && peek() != '\n') text.push_back(static_cast<char>(get()));
    if (peek() == '\n') get();
    // Strip a trailing comment and surrounding whitespace.
    if (const auto hash = text.find('#'); hash != std::string::npos) text.resize(hash);
    const auto first = text.find_first_not_of(" \t\r");
    const auto last = text.find_last_not_of(" \t\r");
    if (first == std::string::npos) return {};
    return text.substr(first, last - first + 1);
  }

  /// Line of the most recently consumed character (1-based).
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  int peek() { return in_.peek(); }

  int get() {
    const int c = in_.get();
    if (c == '\n') ++line_;
    return c;
  }

  void skipSpaceAndComments() {
    while (true) {
      int c = peek();
      if (c == '#') {
        while (c != EOF && c != '\n') c = get(), c = peek();
        continue;
      }
      if (c == EOF || !std::isspace(c)) return;
      get();
    }
  }

  std::istream& in_;
  std::size_t line_ = 1;
};

/// Lexer twin over an in-memory character range — same token/comment/line
/// semantics, direct indexing instead of istream per-char virtual calls.
/// Tokens are string_views into the caller's buffer: the warm ingestion path
/// reads a dozen real literals per instance, and a 17-significant-digit
/// double outgrows SSO, so materializing them would put an allocation on
/// every number.
class MemLexer {
 public:
  MemLexer(const char* data, std::size_t size) : data_(data), size_(size) {}

  /// std::isspace in the classic locale, inlined — the locale-aware libc
  /// call is an out-of-line lookup paid twice per scanned byte here.
  [[nodiscard]] static bool isSpace(char c) noexcept {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f';
  }

  std::optional<std::string_view> next() {
    skipSpaceAndComments();
    if (pos_ >= size_) return std::nullopt;
    const std::size_t start = pos_;
    while (pos_ < size_) {
      const char c = data_[pos_];
      if (isSpace(c) || c == '#') break;
      ++pos_;
    }
    return std::string_view(data_ + start, pos_ - start);
  }

  std::string restOfLine() {
    const std::size_t start = pos_;
    while (pos_ < size_ && data_[pos_] != '\n') ++pos_;
    std::string text(data_ + start, pos_ - start);
    if (pos_ < size_) {
      ++pos_;  // consume the newline
      ++line_;
    }
    if (const auto hash = text.find('#'); hash != std::string::npos) text.resize(hash);
    const auto first = text.find_first_not_of(" \t\r");
    const auto last = text.find_last_not_of(" \t\r");
    if (first == std::string::npos) return {};
    return text.substr(first, last - first + 1);
  }

  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  void skipSpaceAndComments() {
    while (pos_ < size_) {
      const char c = data_[pos_];
      if (c == '#') {
        while (pos_ < size_ && data_[pos_] != '\n') ++pos_;
        continue;
      }
      if (!isSpace(c)) return;
      if (c == '\n') ++line_;
      ++pos_;
    }
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

template <typename Lex>
[[noreturn]] void fail(const Lex& lex, const std::string& what) {
  throw ParseError(lex.line(), what);
}

template <typename Lex>
auto expectToken(Lex& lex, const std::string& context) {
  auto token = lex.next();
  if (!token) throw ParseError(lex.line(), "unexpected end of input while reading " + context);
  return *token;
}

/// std::stod for the istream lexer's owned tokens — the historical number
/// semantics the whole format is defined by.
Real tokenToReal(const std::string& token, std::size_t& used) {
  return std::stod(token, &used);
}

/// The same semantics for borrowed tokens, without materializing them:
/// strtod on a NUL-terminated stack copy (a view into the middle of a line
/// buffer must not let strtod run past the token), with std::stod's exact
/// exception mapping — invalid_argument when nothing converts, out_of_range
/// whenever strtod sets ERANGE (overflow and underflow alike).
Real tokenToReal(std::string_view token, std::size_t& used) {
  char local[64];
  if (token.size() >= sizeof(local)) {  // absurd-length literal: take the copy
    const std::string copy(token);
    return std::stod(copy, &used);
  }
  std::memcpy(local, token.data(), token.size());
  local[token.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(local, &end);
  if (end == local) throw std::invalid_argument("tokenToReal");
  if (errno == ERANGE) throw std::out_of_range("tokenToReal");
  used = static_cast<std::size_t>(end - local);
  return value;
}

/// `context` is a callable so the happy path never pays for the error
/// message — expectReals would otherwise concatenate "… entry N" for every
/// real it reads.
template <typename Lex, typename ContextFn>
Real expectRealWith(Lex& lex, ContextFn&& context) {
  auto token = lex.next();
  if (!token) {
    throw ParseError(lex.line(), "unexpected end of input while reading " + context());
  }
  std::size_t used = 0;
  Real value = 0;
  try {
    value = tokenToReal(*token, used);
  } catch (const std::exception&) {
    fail(lex, "expected a number for " + context() + ", got '" + std::string(*token) + "'");
  }
  if (used != token->size()) {
    fail(lex, "trailing garbage in number for " + context() + ": '" + std::string(*token) + "'");
  }
  return value;
}

template <typename Lex>
Real expectReal(Lex& lex, const std::string& context) {
  return expectRealWith(lex, [&]() -> const std::string& { return context; });
}

template <typename Lex>
std::size_t expectCount(Lex& lex, const std::string& context) {
  const Real value = expectReal(lex, context);
  if (value < 0 || value != static_cast<Real>(static_cast<std::size_t>(value))) {
    fail(lex, context + " must be a non-negative integer");
  }
  return static_cast<std::size_t>(value);
}

template <typename Lex>
std::vector<Real> expectReals(Lex& lex, std::size_t count, const std::string& context) {
  std::vector<Real> values;
  values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    values.push_back(expectRealWith(
        lex, [&] { return context + " entry " + std::to_string(i); }));
  }
  return values;
}

template <typename Lex>
void expectHeader(Lex& lex, const std::string& kind) {
  const auto magic = expectToken(lex, "header");
  if (magic != kind) {
    fail(lex, "expected header '" + kind + " v1', got '" + std::string(magic) + "'");
  }
  const auto version = expectToken(lex, "format version");
  if (version != "v1") fail(lex, "unsupported " + kind + " version '" + std::string(version) + "'");
}

template <typename Lex>
Instance readInstanceImpl(Lex& lex) {
  expectHeader(lex, "pipesched-instance");

  std::string name;
  std::optional<std::size_t> stages;
  std::optional<std::size_t> processors;
  std::optional<std::vector<Real>> work;
  std::optional<std::vector<Real>> comm;
  std::optional<std::vector<Real>> speeds;
  std::optional<Real> bandwidth;
  std::optional<std::vector<Real>> links;
  std::optional<std::vector<Real>> inputBw;
  std::optional<std::vector<Real>> outputBw;
  bool sawName = false;

  while (auto token = lex.next()) {
    const auto& key = *token;
    if (key == "name") {
      if (sawName) fail(lex, "duplicate 'name'");
      sawName = true;
      name = lex.restOfLine();
    } else if (key == "stages") {
      if (stages) fail(lex, "duplicate 'stages'");
      stages = expectCount(lex, "stages");
      if (*stages == 0) fail(lex, "stages must be >= 1");
    } else if (key == "work") {
      if (work) fail(lex, "duplicate 'work'");
      if (!stages) fail(lex, "'work' must come after 'stages'");
      work = expectReals(lex, *stages, "work");
    } else if (key == "comm") {
      if (comm) fail(lex, "duplicate 'comm'");
      if (!stages) fail(lex, "'comm' must come after 'stages'");
      comm = expectReals(lex, *stages + 1, "comm");
    } else if (key == "processors") {
      if (processors) fail(lex, "duplicate 'processors'");
      processors = expectCount(lex, "processors");
      if (*processors == 0) fail(lex, "processors must be >= 1");
    } else if (key == "speeds") {
      if (speeds) fail(lex, "duplicate 'speeds'");
      if (!processors) fail(lex, "'speeds' must come after 'processors'");
      speeds = expectReals(lex, *processors, "speeds");
    } else if (key == "bandwidth") {
      if (bandwidth) fail(lex, "duplicate 'bandwidth'");
      bandwidth = expectReal(lex, "bandwidth");
    } else if (key == "links") {
      if (links) fail(lex, "duplicate 'links'");
      if (!processors) fail(lex, "'links' must come after 'processors'");
      links = expectReals(lex, *processors * *processors, "links");
    } else if (key == "input-bandwidth") {
      if (inputBw) fail(lex, "duplicate 'input-bandwidth'");
      if (!processors) fail(lex, "'input-bandwidth' must come after 'processors'");
      inputBw = expectReals(lex, *processors, "input-bandwidth");
    } else if (key == "output-bandwidth") {
      if (outputBw) fail(lex, "duplicate 'output-bandwidth'");
      if (!processors) fail(lex, "'output-bandwidth' must come after 'processors'");
      outputBw = expectReals(lex, *processors, "output-bandwidth");
    } else {
      fail(lex, "unknown keyword '" + std::string(key) + "'");
    }
  }

  if (!stages) fail(lex, "missing 'stages'");
  if (!work) fail(lex, "missing 'work'");
  if (!comm) fail(lex, "missing 'comm'");
  if (!processors) fail(lex, "missing 'processors'");
  if (!speeds) fail(lex, "missing 'speeds'");

  const bool hetero = links || inputBw || outputBw;
  if (bandwidth && hetero) {
    fail(lex, "'bandwidth' and 'links'/'input-bandwidth'/'output-bandwidth' are exclusive");
  }
  if (!bandwidth && !hetero) fail(lex, "missing 'bandwidth' (or a 'links' block)");
  if (hetero && !(links && inputBw && outputBw)) {
    fail(lex, "a heterogeneous platform needs 'links', 'input-bandwidth' and "
              "'output-bandwidth' together");
  }

  // Model invariants (positivity etc.) are enforced by the core constructors,
  // which throw ModelError with a precise message.
  core::Pipeline pipeline(std::move(*work), std::move(*comm));
  core::Platform platform =
      bandwidth ? core::Platform(std::move(*speeds), *bandwidth)
                : core::Platform::fullyHeterogeneous(std::move(*speeds), std::move(*links),
                                                     std::move(*inputBw), std::move(*outputBw));
  return Instance{std::move(pipeline), std::move(platform), std::move(name)};
}

}  // namespace

Instance readInstance(std::istream& in) {
  Lexer lex(in);
  return readInstanceImpl(lex);
}

Instance readInstanceFromString(const std::string& text) {
  std::istringstream in(text);
  return readInstance(in);
}

Instance readInstanceInPlace(const char* data, std::size_t size) {
  MemLexer lex(data, size);
  return readInstanceImpl(lex);
}

Instance readInstanceFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open instance file: " + path);
  return readInstance(in);
}

void writeInstance(std::ostream& out, const Instance& instance) {
  const core::Pipeline& pipe = instance.pipeline;
  const core::Platform& plat = instance.platform;
  out << "pipesched-instance v1\n";
  if (!instance.name.empty()) out << "name " << instance.name << "\n";
  out << "stages " << pipe.stageCount() << "\n";
  out << "work";
  for (Real w : pipe.works()) out << ' ' << formatReal(w);
  out << "\ncomm";
  for (Real d : pipe.comms()) out << ' ' << formatReal(d);
  out << "\nprocessors " << plat.processorCount() << "\n";
  out << "speeds";
  for (Real s : plat.speeds()) out << ' ' << formatReal(s);
  out << '\n';
  const std::size_t p = plat.processorCount();
  if (plat.isCommHomogeneous()) {
    out << "bandwidth " << formatReal(plat.bandwidth()) << "\n";
  } else {
    out << "links";
    for (std::size_t u = 0; u < p; ++u) {
      for (std::size_t v = 0; v < p; ++v) {
        // The diagonal is ignored by the model; serialize it as 1 so the
        // canonical form is stable and strictly positive.
        out << ' ' << formatReal(u == v ? Real(1) : plat.bandwidth(u, v));
      }
    }
    out << "\ninput-bandwidth";
    for (std::size_t u = 0; u < p; ++u) out << ' ' << formatReal(plat.inputBandwidth(u));
    out << "\noutput-bandwidth";
    for (std::size_t u = 0; u < p; ++u) out << ' ' << formatReal(plat.outputBandwidth(u));
    out << '\n';
  }
}

void writeInstanceToFile(const std::string& path, const Instance& instance) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  writeInstance(out, instance);
}

core::IntervalMapping readMapping(std::istream& in, std::optional<std::size_t> expectedStages) {
  Lexer lex(in);
  expectHeader(lex, "pipesched-mapping");

  std::optional<std::size_t> stages;
  std::optional<std::size_t> intervals;
  std::vector<core::Assignment> parts;

  while (auto token = lex.next()) {
    const std::string& key = *token;
    if (key == "stages") {
      if (stages) fail(lex, "duplicate 'stages'");
      stages = expectCount(lex, "stages");
    } else if (key == "intervals") {
      if (intervals) fail(lex, "duplicate 'intervals'");
      intervals = expectCount(lex, "intervals");
    } else if (key == "interval") {
      core::Assignment a;
      a.interval.first = expectCount(lex, "interval first");
      a.interval.last = expectCount(lex, "interval last");
      a.processor = expectCount(lex, "interval processor");
      if (a.interval.last < a.interval.first) fail(lex, "interval with last < first");
      parts.push_back(a);
    } else {
      fail(lex, "unknown keyword '" + key + "'");
    }
  }

  if (!stages) fail(lex, "missing 'stages'");
  if (!intervals) fail(lex, "missing 'intervals'");
  if (parts.size() != *intervals) {
    fail(lex, "declared " + std::to_string(*intervals) + " intervals but found " +
                  std::to_string(parts.size()));
  }
  if (expectedStages && *stages != *expectedStages) {
    fail(lex, "mapping is for " + std::to_string(*stages) + " stages, expected " +
                  std::to_string(*expectedStages));
  }
  core::IntervalMapping mapping{std::move(parts)};  // checks the ordering invariant
  if (mapping.stageCount() != *stages) {
    fail(lex, "intervals cover " + std::to_string(mapping.stageCount()) +
                  " stages but the file declares " + std::to_string(*stages));
  }
  return mapping;
}

core::IntervalMapping readMappingFromString(const std::string& text,
                                            std::optional<std::size_t> expectedStages) {
  std::istringstream in(text);
  return readMapping(in, expectedStages);
}

core::IntervalMapping readMappingFromFile(const std::string& path,
                                          std::optional<std::size_t> expectedStages) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open mapping file: " + path);
  return readMapping(in, expectedStages);
}

namespace {

/// Parses a comma-separated list of processor indices ("3" or "0,2,5").
std::vector<std::size_t> parseProcessorList(Lexer& lex, const std::string& token) {
  std::vector<std::size_t> processors;
  std::size_t start = 0;
  while (start <= token.size()) {
    const std::size_t comma = token.find(',', start);
    const std::string part =
        token.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    try {
      std::size_t used = 0;
      const unsigned long value = std::stoul(part, &used);
      if (used != part.size()) throw std::invalid_argument(part);
      processors.push_back(value);
    } catch (const std::exception&) {
      fail(lex, "bad processor list entry '" + part + "'");
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return processors;
}

}  // namespace

core::ReplicatedMapping readReplicatedMapping(std::istream& in,
                                              std::optional<std::size_t> expectedStages) {
  Lexer lex(in);
  expectHeader(lex, "pipesched-deal-mapping");

  std::optional<std::size_t> stages;
  std::optional<std::size_t> intervals;
  std::vector<core::ReplicatedAssignment> parts;

  while (auto token = lex.next()) {
    const std::string& key = *token;
    if (key == "stages") {
      if (stages) fail(lex, "duplicate 'stages'");
      stages = expectCount(lex, "stages");
    } else if (key == "intervals") {
      if (intervals) fail(lex, "duplicate 'intervals'");
      intervals = expectCount(lex, "intervals");
    } else if (key == "interval") {
      core::ReplicatedAssignment a;
      a.interval.first = expectCount(lex, "interval first");
      a.interval.last = expectCount(lex, "interval last");
      a.processors = parseProcessorList(lex, expectToken(lex, "replica list"));
      if (a.interval.last < a.interval.first) fail(lex, "interval with last < first");
      parts.push_back(std::move(a));
    } else {
      fail(lex, "unknown keyword '" + key + "'");
    }
  }

  if (!stages) fail(lex, "missing 'stages'");
  if (!intervals) fail(lex, "missing 'intervals'");
  if (parts.size() != *intervals) {
    fail(lex, "declared " + std::to_string(*intervals) + " intervals but found " +
                  std::to_string(parts.size()));
  }
  if (expectedStages && *stages != *expectedStages) {
    fail(lex, "mapping is for " + std::to_string(*stages) + " stages, expected " +
                  std::to_string(*expectedStages));
  }
  if (!parts.empty() &&
      (parts.front().interval.first != 0 || parts.back().interval.last + 1 != *stages)) {
    fail(lex, "intervals do not cover the declared stage range");
  }
  return core::ReplicatedMapping(std::move(parts));  // checks ordering + non-empty sets
}

core::ReplicatedMapping readReplicatedMappingFromString(
    const std::string& text, std::optional<std::size_t> expectedStages) {
  std::istringstream in(text);
  return readReplicatedMapping(in, expectedStages);
}

core::ReplicatedMapping readReplicatedMappingFromFile(
    const std::string& path, std::optional<std::size_t> expectedStages) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open mapping file: " + path);
  return readReplicatedMapping(in, expectedStages);
}

void writeReplicatedMapping(std::ostream& out, const core::ReplicatedMapping& mapping) {
  out << "pipesched-deal-mapping v1\n";
  const std::size_t stages =
      mapping.empty() ? 0 : mapping.assignments().back().interval.last + 1;
  out << "stages " << stages << "\n";
  out << "intervals " << mapping.intervalCount() << "\n";
  for (const core::ReplicatedAssignment& a : mapping.assignments()) {
    out << "interval " << a.interval.first << ' ' << a.interval.last << ' ';
    for (std::size_t r = 0; r < a.processors.size(); ++r) {
      out << (r ? "," : "") << a.processors[r];
    }
    out << '\n';
  }
}

void writeReplicatedMappingToFile(const std::string& path,
                                  const core::ReplicatedMapping& mapping) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  writeReplicatedMapping(out, mapping);
}

void writeMapping(std::ostream& out, const core::IntervalMapping& mapping) {
  out << "pipesched-mapping v1\n";
  out << "stages " << mapping.stageCount() << "\n";
  out << "intervals " << mapping.intervalCount() << "\n";
  for (const core::Assignment& a : mapping.assignments()) {
    out << "interval " << a.interval.first << ' ' << a.interval.last << ' ' << a.processor
        << '\n';
  }
}

void writeMappingToFile(const std::string& path, const core::IntervalMapping& mapping) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  writeMapping(out, mapping);
}

}  // namespace pipesched::io
