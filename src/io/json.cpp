#include "pipesched/io/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "pipesched/io/real_format.hpp"

namespace pipesched::io {

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& out, bool pretty) : out_(&out), pretty_(pretty) {}

JsonWriter::~JsonWriter() = default;

bool JsonWriter::complete() const noexcept { return rootWritten_ && stack_.empty(); }

void JsonWriter::newlineIndent() {
  if (!pretty_) return;
  *out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) *out_ << "  ";
}

void JsonWriter::beforeValue() {
  if (stack_.empty()) {
    if (rootWritten_) throw std::logic_error("JsonWriter: multiple top-level values");
    return;
  }
  switch (stack_.back()) {
    case Frame::kObjectExpectKey:
      throw std::logic_error("JsonWriter: value emitted where an object key is required");
    case Frame::kObjectExpectValue:
      stack_.back() = Frame::kObjectExpectKey;
      return;  // the key already placed the separator
    case Frame::kArray:
      if (hasItems_.back()) *out_ << ',';
      newlineIndent();
      hasItems_.back() = true;
      return;
  }
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  *out_ << '{';
  stack_.push_back(Frame::kObjectExpectKey);
  hasItems_.push_back(false);
  rootWritten_ = true;
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  if (stack_.empty() || stack_.back() != Frame::kObjectExpectKey) {
    throw std::logic_error("JsonWriter: endObject outside an object (or after a dangling key)");
  }
  const bool had = hasItems_.back();
  stack_.pop_back();
  hasItems_.pop_back();
  if (had) newlineIndent();
  *out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  *out_ << '[';
  stack_.push_back(Frame::kArray);
  hasItems_.push_back(false);
  rootWritten_ = true;
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: endArray outside an array");
  }
  const bool had = hasItems_.back();
  stack_.pop_back();
  hasItems_.pop_back();
  if (had) newlineIndent();
  *out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != Frame::kObjectExpectKey) {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  if (hasItems_.back()) *out_ << ',';
  newlineIndent();
  hasItems_.back() = true;
  *out_ << '"' << jsonEscape(name) << '"' << (pretty_ ? ": " : ":");
  stack_.back() = Frame::kObjectExpectValue;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& text) {
  beforeValue();
  *out_ << '"' << jsonEscape(text) << '"';
  rootWritten_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) { return value(std::string(text)); }

JsonWriter& JsonWriter::value(double number) {
  beforeValue();
  if (!std::isfinite(number)) {
    *out_ << "null";
  } else {
    *out_ << formatReal(number);
  }
  rootWritten_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::size_t number) {
  beforeValue();
  *out_ << number;
  rootWritten_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(int number) {
  beforeValue();
  *out_ << number;
  rootWritten_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  beforeValue();
  *out_ << (flag ? "true" : "false");
  rootWritten_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  beforeValue();
  *out_ << "null";
  rootWritten_ = true;
  return *this;
}

JsonWriter& JsonWriter::kvArray(const std::string& name, const std::vector<double>& values) {
  key(name);
  beginArray();
  for (const double v : values) value(v);
  return endArray();
}

void writeInstanceJson(std::ostream& out, const core::Pipeline& pipeline,
                       const core::Platform& platform, const std::string& name, bool pretty) {
  JsonWriter w(out, pretty);
  w.beginObject();
  if (!name.empty()) w.kv("name", name);
  w.key("pipeline").beginObject();
  w.kv("stages", pipeline.stageCount());
  w.kvArray("work", pipeline.works());
  w.kvArray("comm", pipeline.comms());
  w.endObject();
  w.key("platform").beginObject();
  w.kv("processors", platform.processorCount());
  w.kvArray("speeds", platform.speeds());
  w.kv("commHomogeneous", platform.isCommHomogeneous());
  if (platform.isCommHomogeneous()) {
    w.kv("bandwidth", platform.bandwidth());
  } else {
    const std::size_t p = platform.processorCount();
    w.key("links").beginArray();
    for (std::size_t u = 0; u < p; ++u) {
      w.beginArray();
      for (std::size_t v = 0; v < p; ++v) w.value(u == v ? 0.0 : platform.bandwidth(u, v));
      w.endArray();
    }
    w.endArray();
    std::vector<double> in(p), outBw(p);
    for (std::size_t u = 0; u < p; ++u) {
      in[u] = platform.inputBandwidth(u);
      outBw[u] = platform.outputBandwidth(u);
    }
    w.kvArray("inputBandwidth", in);
    w.kvArray("outputBandwidth", outBw);
  }
  w.endObject();
  w.endObject();
  out << '\n';
}

void writeMappingJson(std::ostream& out, const core::IntervalMapping& mapping,
                      const core::Metrics* metrics, bool pretty) {
  JsonWriter w(out, pretty);
  w.beginObject();
  w.kv("stages", mapping.stageCount());
  w.key("intervals").beginArray();
  for (const core::Assignment& a : mapping.assignments()) {
    w.beginObject();
    w.kv("first", a.interval.first);
    w.kv("last", a.interval.last);
    w.kv("processor", a.processor);
    w.endObject();
  }
  w.endArray();
  if (metrics != nullptr) {
    w.key("metrics").beginObject();
    w.kv("period", metrics->period);
    w.kv("latency", metrics->latency);
    w.kv("bottleneckInterval", metrics->bottleneckInterval);
    w.endObject();
  }
  w.endObject();
  out << '\n';
}

}  // namespace pipesched::io
