#include "pipesched/workload/generator.hpp"

#include <cctype>

namespace pipesched::workload {

std::string experimentName(ExperimentKind kind) {
  switch (kind) {
    case ExperimentKind::kE1BalancedHomComm: return "E1";
    case ExperimentKind::kE2BalancedHetComm: return "E2";
    case ExperimentKind::kE3LargeComputations: return "E3";
    case ExperimentKind::kE4SmallComputations: return "E4";
  }
  throw ModelError("experimentName: unknown kind");
}

std::optional<ExperimentKind> experimentKindFromName(const std::string& name) {
  std::string upper = name;
  for (char& c : upper) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  if (upper == "E1") return ExperimentKind::kE1BalancedHomComm;
  if (upper == "E2") return ExperimentKind::kE2BalancedHetComm;
  if (upper == "E3") return ExperimentKind::kE3LargeComputations;
  if (upper == "E4") return ExperimentKind::kE4SmallComputations;
  return std::nullopt;
}

std::string experimentDescription(ExperimentKind kind) {
  switch (kind) {
    case ExperimentKind::kE1BalancedHomComm:
      return "balanced communication/computation, homogeneous communications";
    case ExperimentKind::kE2BalancedHetComm:
      return "balanced communication/computation, heterogeneous communications";
    case ExperimentKind::kE3LargeComputations:
      return "large computations (compute-dominated)";
    case ExperimentKind::kE4SmallComputations:
      return "small computations (communication-dominated)";
  }
  throw ModelError("experimentDescription: unknown kind");
}

core::Pipeline randomPipeline(ExperimentKind kind, std::size_t n, Rng& rng) {
  if (n == 0) throw ModelError("randomPipeline: n must be >= 1");
  std::vector<Real> work(n);
  std::vector<Real> comm(n + 1);
  // Draw communications first, computations second: fixed order keeps the
  // streams reproducible when regimes change only one of the distributions.
  for (std::size_t k = 0; k <= n; ++k) {
    switch (kind) {
      case ExperimentKind::kE1BalancedHomComm: comm[k] = Real(10); break;
      case ExperimentKind::kE2BalancedHetComm: comm[k] = rng.uniform(1, 100); break;
      case ExperimentKind::kE3LargeComputations:
      case ExperimentKind::kE4SmallComputations: comm[k] = rng.uniform(1, 20); break;
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    switch (kind) {
      case ExperimentKind::kE1BalancedHomComm:
      case ExperimentKind::kE2BalancedHetComm: work[k] = rng.uniform(1, 20); break;
      case ExperimentKind::kE3LargeComputations: work[k] = rng.uniform(10, 1000); break;
      case ExperimentKind::kE4SmallComputations: work[k] = rng.uniform(0.01, 10); break;
    }
  }
  return core::Pipeline(std::move(work), std::move(comm));
}

core::Platform randomPlatform(std::size_t p, Rng& rng, const PlatformParams& params) {
  if (p == 0) throw ModelError("randomPlatform: p must be >= 1");
  std::vector<Real> speeds(p);
  for (auto& s : speeds) {
    s = static_cast<Real>(rng.uniformInt(params.speedMin, params.speedMax));
  }
  return core::Platform(std::move(speeds), params.bandwidth);
}

core::Platform randomHeterogeneousPlatform(std::size_t p, Rng& rng, Real bwMin, Real bwMax) {
  if (p == 0) throw ModelError("randomHeterogeneousPlatform: p must be >= 1");
  std::vector<Real> speeds(p);
  for (auto& s : speeds) s = static_cast<Real>(rng.uniformInt(1, 20));
  std::vector<Real> links(p * p, Real(1));
  for (std::size_t u = 0; u < p; ++u) {
    for (std::size_t v = 0; v < p; ++v) {
      if (u != v) links[u * p + v] = rng.uniform(bwMin, bwMax);
    }
  }
  std::vector<Real> in(p), out(p);
  for (auto& b : in) b = rng.uniform(bwMin, bwMax);
  for (auto& b : out) b = rng.uniform(bwMin, bwMax);
  return core::Platform::fullyHeterogeneous(std::move(speeds), std::move(links), std::move(in),
                                            std::move(out));
}

InstancePair randomInstance(ExperimentKind kind, std::size_t n, std::size_t p, Rng& rng) {
  return InstancePair{randomPipeline(kind, n, rng), randomPlatform(p, rng)};
}

}  // namespace pipesched::workload
