#include "pipesched/workload/rng.hpp"

namespace pipesched::workload {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::nextU64() {
  // xoshiro256**
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Real Rng::nextReal() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<Real>(nextU64() >> 11) * 0x1.0p-53;
}

Real Rng::uniform(Real lo, Real hi) {
  if (!(lo < hi)) throw ModelError("Rng::uniform: requires lo < hi");
  return lo + (hi - lo) * nextReal();
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw ModelError("Rng::uniformInt: requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(nextU64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t value = nextU64();
  while (value >= limit) value = nextU64();
  return lo + static_cast<std::int64_t>(value % span);
}

Rng Rng::fork(std::uint64_t stream) const {
  std::uint64_t mix = seed_;
  (void)splitmix64(mix);
  mix ^= 0xA3C59AC2ED1767ULL * (stream + 1);
  return Rng(splitmix64(mix));
}

}  // namespace pipesched::workload
