#include "pipesched/workload/scenarios.hpp"

#include "pipesched/workload/rng.hpp"

namespace pipesched::workload {

Scenario imageProcessingScenario() {
  //                     decode demosaic denoise crop upscale grade sharpen encode
  std::vector<Real> w = {4,     8,       45,     2,   60,     12,   9,      25};
  // Frame sizes between stages; crop shrinks the data, upscale grows it.
  std::vector<Real> d = {20, 20, 24, 24, 12, 30, 30, 30, 18};
  return Scenario{
      "image-processing",
      "8-stage video filter chain (decode, denoise, upscale, ..., encode)",
      core::Pipeline(std::move(w), std::move(d)),
      {"decode", "demosaic", "denoise", "crop", "upscale", "color-grade", "sharpen",
       "encode"}};
}

Scenario genomicsScenario() {
  std::vector<Real> w = {80, 900, 150, 120, 600, 90};
  std::vector<Real> d = {15, 14, 18, 18, 17, 3, 2};
  return Scenario{"genomics-variant-calling",
                  "6-stage variant-calling chain, compute-dominated (E3-like)",
                  core::Pipeline(std::move(w), std::move(d)),
                  {"qc-trim", "align", "sort", "dedup", "call-variants", "annotate"}};
}

Scenario etlScenario() {
  std::vector<Real> w = {0.8, 2.5, 1.2, 3.0, 6.0, 4.5, 1.0, 5.0, 2.0, 0.7};
  std::vector<Real> d = {18, 18, 16, 16, 15, 19, 19, 8, 8, 6, 6};
  return Scenario{"streaming-etl",
                  "10-stage ETL chain over fat records, communication-dominated (E4-like)",
                  core::Pipeline(std::move(w), std::move(d)),
                  {"ingest", "parse", "validate", "dedupe", "join-dim", "enrich", "project",
                   "aggregate", "format", "sink"}};
}

std::vector<Scenario> allScenarios() {
  return {imageProcessingScenario(), genomicsScenario(), etlScenario()};
}

core::Platform labCluster() {
  // Mixed-generation workstations on a 10 units/s LAN.
  return core::Platform({20, 18, 15, 12, 12, 9, 7, 6, 5, 4}, /*bandwidth=*/10);
}

core::Platform largeCluster() {
  Rng rng(0xC1D57E5ULL);
  std::vector<Real> speeds(100);
  for (auto& s : speeds) s = static_cast<Real>(rng.uniformInt(1, 20));
  return core::Platform(std::move(speeds), /*bandwidth=*/10);
}

}  // namespace pipesched::workload
