#include "pipesched/runtime/executor.hpp"

#include <chrono>
#include <memory>
#include <thread>

#include "pipesched/runtime/bounded_queue.hpp"

namespace pipesched::runtime {

namespace {

using Clock = std::chrono::steady_clock;

/// One data set travelling through the worker chain.
struct Token {
  std::size_t index = 0;
};

/// Calibrated busy-wait: precise at the microsecond scale the executor uses.
void spinFor(double seconds) {
  if (seconds <= 0) return;
  const auto deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                           std::chrono::duration<double>(seconds));
  while (Clock::now() < deadline) {
    // busy wait
  }
}

}  // namespace

ExecReport executeMapping(const core::Evaluator& eval, const core::IntervalMapping& mapping,
                          const ExecConfig& config) {
  mapping.validate(eval.pipeline().stageCount(), eval.platform().processorCount());
  if (config.datasetCount == 0) throw ModelError("executeMapping: datasetCount must be >= 1");
  if (config.timeScale <= 0) throw ModelError("executeMapping: timeScale must be > 0");

  const std::size_t m = mapping.intervalCount();

  // Per-interval wall-clock durations.
  std::vector<double> computeSec(m), inSec(m), outSec(m);
  for (std::size_t j = 0; j < m; ++j) {
    const core::CycleBreakdown b = eval.breakdown(mapping, j);
    computeSec[j] = b.compute * config.timeScale;
    inSec[j] = b.input * config.timeScale;
    outSec[j] = b.output * config.timeScale;
  }

  // Queues between workers; queue[j] feeds worker j (worker 0 self-feeds from
  // the source loop), queue[m] is the sink.
  std::vector<std::unique_ptr<BoundedQueue<Token>>> queues;
  for (std::size_t q = 0; q <= m; ++q) {
    queues.push_back(std::make_unique<BoundedQueue<Token>>(config.queueCapacity));
  }

  const auto start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    workers.emplace_back([&, j] {
      for (;;) {
        std::optional<Token> token = queues[j]->pop();
        if (!token) break;
        spinFor(inSec[j]);    // receive (one-port rendezvous: receiver's share)
        spinFor(computeSec[j]);
        spinFor(outSec[j]);   // send (sender's share)
        queues[j + 1]->push(*token);
      }
      queues[j + 1]->close();
    });
  }

  // Source: saturated stream of data sets. Runs on its own thread so the
  // main thread can drain the sink concurrently — otherwise backpressure from
  // the bounded queues deadlocks once datasetCount exceeds the total queue
  // capacity of the chain.
  std::thread source([&] {
    for (std::size_t k = 0; k < config.datasetCount; ++k) {
      queues[0]->push(Token{k});
    }
    queues[0]->close();
  });

  // Sink: drain and timestamp.
  ExecReport report;
  report.outputsInOrder = true;
  std::size_t expected = 0;
  for (;;) {
    std::optional<Token> token = queues[m]->pop();
    if (!token) break;
    const double t = std::chrono::duration<double>(Clock::now() - start).count();
    report.completionSeconds.push_back(t);
    if (token->index != expected++) report.outputsInOrder = false;
    ++report.processedCount;
  }
  source.join();
  for (auto& w : workers) w.join();

  if (!report.completionSeconds.empty()) {
    report.makespanSeconds = report.completionSeconds.back();
    const std::size_t k = report.completionSeconds.size();
    const std::size_t half = k / 2;
    if (k >= 2 && half + 1 < k) {
      report.steadyPeriodSeconds =
          (report.completionSeconds[k - 1] - report.completionSeconds[half]) /
          static_cast<double>(k - 1 - half);
      report.steadyPeriodModelUnits = report.steadyPeriodSeconds / config.timeScale;
    }
  }
  return report;
}

}  // namespace pipesched::runtime
