#include "pipesched/obs/metrics.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "pipesched/io/json.hpp"
#include "pipesched/obs/trace.hpp"

namespace pipesched::obs {

namespace {
std::atomic<bool> g_metricsEnabled{false};
std::atomic<bool> g_tracingEnabled{false};
}  // namespace

bool metricsEnabled() noexcept { return g_metricsEnabled.load(std::memory_order_relaxed); }
void setMetricsEnabled(bool on) noexcept {
  g_metricsEnabled.store(on, std::memory_order_relaxed);
}

bool tracingEnabled() noexcept { return g_tracingEnabled.load(std::memory_order_relaxed); }
void setTracingEnabled(bool on) noexcept {
  g_tracingEnabled.store(on, std::memory_order_relaxed);
}

const char* unitName(Unit unit) noexcept {
  return unit == Unit::kNanoseconds ? "ns" : "count";
}

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

std::size_t Histogram::bucketIndex(std::uint64_t value) noexcept {
  if (value == 0) return 0;
  const auto width = static_cast<std::size_t>(std::bit_width(value));
  return width < kHistogramBuckets - 1 ? width : kHistogramBuckets - 1;
}

std::uint64_t Histogram::bucketLow(std::size_t index) noexcept {
  return index == 0 ? 0 : std::uint64_t{1} << (index - 1);
}

std::uint64_t Histogram::bucketHigh(std::size_t index) noexcept {
  if (index == 0) return 0;
  if (index >= kHistogramBuckets - 1) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << index) - 1;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.unit = unit_;
  snap.sum = sum_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  return snap;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) buckets[i] += other.buckets[i];
}

double HistogramSnapshot::mean() const noexcept {
  return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the order statistic we are after, 1-based.
  const double raw = std::ceil(q * static_cast<double>(count));
  const std::uint64_t target = raw < 1.0 ? 1 : static_cast<std::uint64_t>(raw);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    const std::uint64_t inBucket = buckets[i];
    if (cumulative + inBucket >= target) {
      const auto low = static_cast<double>(Histogram::bucketLow(i));
      // The overflow bucket has no finite top; pretend it spans one octave
      // like its neighbours so interpolation stays finite.
      const double high = i >= kHistogramBuckets - 1
                              ? low * 2.0 - 1.0
                              : static_cast<double>(Histogram::bucketHigh(i));
      const double within =
          static_cast<double>(target - cumulative) / static_cast<double>(inBucket);
      return low + within * (high + 1.0 - low);
    }
    cumulative += inBucket;
  }
  return static_cast<double>(Histogram::bucketLow(kHistogramBuckets - 1));  // unreachable
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (CounterRow& row : counters_) {
    if (row.name == name) return row.metric;
  }
  counters_.emplace_back(name);
  return counters_.back().metric;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (GaugeRow& row : gauges_) {
    if (row.name == name) return row.metric;
  }
  gauges_.emplace_back(name);
  return gauges_.back().metric;
}

Histogram& Registry::histogram(const std::string& name, Unit unit) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (HistogramRow& row : histograms_) {
    if (row.name == name) return row.metric;
  }
  histograms_.emplace_back(name, unit);
  return histograms_.back().metric;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const CounterRow& row : counters_) {
    snap.counters.push_back({row.name, row.metric.value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const GaugeRow& row : gauges_) {
    snap.gauges.push_back({row.name, row.metric.value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const HistogramRow& row : histograms_) {
    snap.histograms.push_back({row.name, row.metric.snapshot()});
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (CounterRow& row : counters_) row.metric.reset();
  for (GaugeRow& row : gauges_) row.metric.reset();
  for (HistogramRow& row : histograms_) row.metric.reset();
}

Registry& registry() {
  static Registry instance;
  return instance;
}

void preregisterStandardMetrics() {
  Registry& reg = registry();
  for (std::size_t i = 0; i < kStageCount; ++i) {
    (void)stageHistogram(static_cast<Stage>(i));
  }
  (void)reg.histogram(names::kQueueDepth, Unit::kCount);
  (void)reg.histogram(names::kDrain, Unit::kNanoseconds);
  (void)reg.histogram(names::kMemberRun, Unit::kNanoseconds);
  (void)reg.counter(names::kCoalesced);
  (void)reg.counter(names::kRequestsSolved);
  (void)reg.counter(names::kRequestsCacheHit);
  (void)reg.counter(names::kRequestsFailed);
  (void)reg.counter(names::kParseErrors);
  (void)reg.counter(names::kDeltaPeeks);
  (void)reg.counter(names::kDeltaApplies);
  (void)reg.counter(names::kDeltaReplaces);
  (void)reg.counter(names::kDeltaUndos);
  (void)reg.counter(names::kNetAccepted);
  (void)reg.gauge(names::kNetActive);
  (void)reg.counter(names::kNetClosed);
  (void)reg.counter(names::kNetErrored);
  (void)reg.counter(names::kNetBytesRead);
  (void)reg.counter(names::kNetBytesWritten);
  (void)reg.counter(names::kNetRequests);
  (void)reg.counter(names::kNetShed);
  (void)reg.gauge(names::kNetDraining);
  (void)reg.counter(names::kNetTimeout);
  (void)reg.counter(names::kNetRequestTimeouts);
  (void)reg.counter(names::kNetIdleClosed);
  (void)reg.counter(names::kFaultInjected);
  (void)reg.counter(names::kTimeoutQueueExpired);
  (void)reg.counter(names::kTimeoutCoalescedExpired);
  (void)reg.counter(names::kDegradedResponses);
  (void)reg.counter(names::kDegradedMembers);
  for (const char* endpoint : {"solve", "stats", "healthz", "metrics"}) {
    (void)endpointHistogram(endpoint);
  }
}

Histogram& endpointHistogram(const std::string& endpoint) {
  return registry().histogram("net.endpoint." + endpoint, Unit::kNanoseconds);
}

void writeSnapshotJson(const Snapshot& snapshot, io::JsonWriter& w) {
  w.beginObject();
  w.key("counters").beginObject();
  for (const Snapshot::CounterRow& row : snapshot.counters) {
    w.kv(row.name, static_cast<std::size_t>(row.value));
  }
  w.endObject();
  w.key("gauges").beginObject();
  for (const Snapshot::GaugeRow& row : snapshot.gauges) {
    if (row.value >= 0) {
      w.kv(row.name, static_cast<std::size_t>(row.value));
    } else {
      w.kv(row.name, static_cast<double>(row.value));
    }
  }
  w.endObject();
  w.key("histograms").beginObject();
  for (const Snapshot::HistogramRow& row : snapshot.histograms) {
    const HistogramSnapshot& h = row.hist;
    w.key(row.name).beginObject();
    w.kv("unit", unitName(h.unit));
    w.kv("count", static_cast<std::size_t>(h.count));
    w.kv("sum", static_cast<std::size_t>(h.sum));
    w.kv("mean", h.mean());
    w.kv("p50", h.quantile(0.50));
    w.kv("p90", h.quantile(0.90));
    w.kv("p99", h.quantile(0.99));
    w.key("buckets").beginArray();
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      w.beginObject();
      w.kv("lo", static_cast<std::size_t>(Histogram::bucketLow(i)));
      // The overflow bucket's true top is 2^64-1; emit its low bound twice
      // rather than a value JSON consumers cannot hold exactly.
      w.kv("hi", static_cast<std::size_t>(i >= kHistogramBuckets - 1
                                              ? Histogram::bucketLow(i)
                                              : Histogram::bucketHigh(i)));
      w.kv("count", static_cast<std::size_t>(h.buckets[i]));
      w.endObject();
    }
    w.endArray();
    w.endObject();
  }
  w.endObject();
  w.endObject();
}

}  // namespace pipesched::obs
