#include "pipesched/obs/trace.hpp"

namespace pipesched::obs {

const char* stageName(Stage stage) noexcept {
  switch (stage) {
    case Stage::kParse:
      return "parse";
    case Stage::kFingerprint:
      return "fingerprint";
    case Stage::kCacheLookup:
      return "cache_lookup";
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kMemberSolve:
      return "member_solve";
    case Stage::kMerge:
      return "merge";
    case Stage::kEmit:
      return "emit";
    case Stage::kCount_:
      break;
  }
  return "unknown";
}

Histogram& stageHistogram(Stage stage) {
  // One-time registration of every stage histogram; thereafter a plain
  // array read, so hot paths pay no registry lookup.
  static const std::array<Histogram*, kStageCount> table = [] {
    std::array<Histogram*, kStageCount> t{};
    for (std::size_t i = 0; i < kStageCount; ++i) {
      const std::string name = std::string("stage.") + stageName(static_cast<Stage>(i));
      t[i] = &registry().histogram(name, Unit::kNanoseconds);
    }
    return t;
  }();
  return *table[static_cast<std::size_t>(stage)];
}

}  // namespace pipesched::obs
