#include "pipesched/obs/exposition.hpp"

#include <ostream>
#include <sstream>

#include "pipesched/obs/metrics.hpp"

namespace pipesched::obs {

namespace {

bool validLeading(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
}

bool validBody(char c) { return validLeading(c) || (c >= '0' && c <= '9'); }

void writeHeader(std::ostream& out, const std::string& name, const char* type,
                 const char* help) {
  out << "# HELP " << name << ' ' << help << '\n';
  out << "# TYPE " << name << ' ' << type << '\n';
}

}  // namespace

std::string sanitizeMetricName(const std::string& name) {
  std::string result = "pipesched_";
  bool pendingSeparator = false;
  for (const char c : name) {
    if (validBody(c)) {
      if (pendingSeparator) result.push_back('_');
      pendingSeparator = false;
      result.push_back(c);
    } else if (result.size() > 10) {  // runs of invalid chars collapse; no
      pendingSeparator = true;        // leading separator after the prefix
    }
  }
  return result;
}

void writeSnapshotPrometheus(const Snapshot& snapshot, std::ostream& out) {
  for (const Snapshot::CounterRow& row : snapshot.counters) {
    const std::string name = sanitizeMetricName(row.name);
    writeHeader(out, name, "counter", "monotonic event count");
    out << name << ' ' << row.value << '\n';
  }
  for (const Snapshot::GaugeRow& row : snapshot.gauges) {
    const std::string name = sanitizeMetricName(row.name);
    writeHeader(out, name, "gauge", "instantaneous level");
    out << name << ' ' << row.value << '\n';
  }
  for (const Snapshot::HistogramRow& row : snapshot.histograms) {
    const std::string name = sanitizeMetricName(row.name);
    const HistogramSnapshot& h = row.hist;
    writeHeader(out, name, "histogram",
                h.unit == Unit::kNanoseconds
                    ? "latency histogram (raw integer nanoseconds)"
                    : "value histogram (power-of-two buckets)");
    // Cumulative buckets over the inclusive upper bound of each power-of-two
    // bucket; empty buckets are skipped (cumulative counts stay correct and
    // non-decreasing), the mandatory +Inf bucket always equals `count`.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      cumulative += h.buckets[i];
      out << name << "_bucket{le=\"" << Histogram::bucketHigh(i) << "\"} " << cumulative
          << '\n';
    }
    out << name << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    out << name << "_sum " << h.sum << '\n';
    out << name << "_count " << h.count << '\n';
  }
}

std::string renderSnapshotPrometheus(const Snapshot& snapshot) {
  std::ostringstream out;
  writeSnapshotPrometheus(snapshot, out);
  return std::move(out).str();
}

}  // namespace pipesched::obs
