#include "pipesched/cli/cli.hpp"

#include <fstream>
#include <map>
#include <ostream>

#include "cli_internal.hpp"

namespace pipesched::cli {

namespace detail {

bool parseOnOff(const ArgList& args, const std::string& name, bool fallback) {
  const std::string value = args.getOr(name, fallback ? "on" : "off");
  if (value != "on" && value != "off") {
    throw UsageError("option --" + name + " must be 'on' or 'off', not '" + value + "'");
  }
  return value == "on";
}

void writeCacheStatsJson(io::JsonWriter& w, const service::CacheStats& stats) {
  w.beginObject();
  w.kv("entries", stats.entries);
  w.kv("hits", static_cast<std::size_t>(stats.hits));
  w.kv("misses", static_cast<std::size_t>(stats.misses));
  w.kv("evictions", static_cast<std::size_t>(stats.evictions));
  w.kv("hit_ratio", stats.hitRatio());
  w.endObject();
}

workload::ExperimentKind parseKind(const std::string& text) {
  if (const auto kind = workload::experimentKindFromName(text)) return *kind;
  throw UsageError("unknown experiment kind '" + text + "' (expected E1..E4)");
}

std::vector<std::unique_ptr<heuristics::MappingHeuristic>> parseHeuristics(
    const std::string& spec) {
  if (spec == "all") return heuristics::makeAllHeuristics();
  static const std::map<std::string, heuristics::HeuristicId> byName = {
      {"H1", heuristics::HeuristicId::kH1SpMonoP},
      {"H2", heuristics::HeuristicId::kH2ExploThreeMono},
      {"H3", heuristics::HeuristicId::kH3ExploThreeBi},
      {"H4", heuristics::HeuristicId::kH4SpBiP},
      {"H5", heuristics::HeuristicId::kH5SpMonoL},
      {"H6", heuristics::HeuristicId::kH6SpBiL},
  };
  std::vector<std::unique_ptr<heuristics::MappingHeuristic>> result;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string token =
        spec.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    const auto it = byName.find(token);
    if (it == byName.end()) {
      throw UsageError("unknown heuristic '" + token + "' (expected H1..H6 or all)");
    }
    result.push_back(heuristics::makeHeuristic(it->second));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return result;
}

io::Instance loadInstance(const ArgList& args) {
  return io::readInstanceFromFile(args.require("instance"));
}

core::IntervalMapping loadMapping(const ArgList& args, const io::Instance& instance) {
  core::IntervalMapping mapping = io::readMappingFromFile(
      args.require("mapping"), instance.pipeline.stageCount());
  mapping.validate(instance.pipeline.stageCount(), instance.platform.processorCount());
  return mapping;
}

void writeToFileOr(const ArgList& args, const std::string& name, std::ostream& fallback,
                   const std::function<void(std::ostream&)>& body) {
  if (const auto path = args.get(name)) {
    std::ofstream file(*path);
    if (!file) throw std::runtime_error("cannot open for writing: " + *path);
    body(file);
  } else {
    body(fallback);
  }
}

service::ServiceConfig serviceConfigFromArgs(const ArgList& args) {
  service::ServiceConfig config;
  // Read --threads unconditionally so --serial --threads N is accepted (and
  // --serial wins), identically in every command using this helper.
  config.threads = args.getSize("threads", service::ThreadPool::defaultThreadCount());
  if (args.has("serial")) config.threads = 0;
  config.cacheCapacity = args.has("no-cache") ? 0 : args.getSize("cache-capacity", 1024);
  config.shareSubResults = parseOnOff(args, "share-subresults", true);
  config.portfolio.useExact = !args.has("no-exact");
  config.portfolio.budget.maxRunsPerSolver = args.getU64("budget", UINT64_MAX);
  config.portfolio.budget.timeBudgetMs = args.getReal("time-budget", 0);
  if (const auto members = args.get("portfolio-members")) {
    config.portfolio.members = parsePortfolioMembers(*members);
  }
  config.portfolio.dropAfter = args.getSize("drop-after", 0);
  return config;
}

std::vector<std::string> parsePortfolioMembers(const std::string& spec) {
  if (spec == "default") return {};  // empty = the service default (H1..H6 + exact)
  std::vector<std::string> ids;
  if (spec == "all") {
    ids = service::allPortfolioMembers();
  } else {
    std::size_t start = 0;
    while (start <= spec.size()) {
      const std::size_t comma = spec.find(',', start);
      ids.push_back(
          spec.substr(start, comma == std::string::npos ? std::string::npos : comma - start));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  // Validate now: an unknown id should be a usage error on the command line,
  // not a per-request solver failure deep inside the batch.
  service::PortfolioConfig probe;
  probe.members = ids;
  try {
    (void)service::makePortfolioMembers(probe);
  } catch (const ModelError& e) {
    throw UsageError(e.what());
  }
  return ids;
}

}  // namespace detail

std::string usageText() {
  return R"(pipesched — bi-criteria mapping of pipeline workflows (CLUSTER'07 reproduction)

usage: pipesched <command> [options]

commands:
  batch      portfolio-solve many instances on a thread pool with a result cache
             [FILE|DIR...] [--requests FILE.jsonl] [--scenarios]
             [--kind E1..E4 [--count N] [--stages N] [--processors P] [--seed S]]
             [--points N] [--range X] [--overlap]
             [--threads N | --serial] [--cache-capacity N | --no-cache]
             [--share-subresults on|off]  # cross-request sub-result memoization
                            # (instance-keyed; fronts identical either way)
             [--no-exact] [--budget RUNS] [--time-budget MS] [--json]
             [--portfolio-members default|all|ID,ID,...]  # H1..H6, ls:HN,
                            # sa:HN (refiners), c2c, c2c:ls, exact
             [--drop-after K]  # drop a member after K stale grid points
             [--repeat N]   # submit the batch N times; later passes hit the cache
             [--stream [--queue-capacity N]]  # async engine: lazy ingest,
                            # incremental JSONL output, bounded memory
             [--trace on|off]    # per-request "trace" stage breakdowns in the
                            # JSON/JSONL output (implies --metrics on)
             [--metrics on|off]  # record registry metrics during the run
  serve      streaming loop: JSONL requests in (stdin or --input FILE), one
             JSONL outcome per line out, answered in input order as completed
             [--input FILE] [--threads N | --serial] [--queue-capacity N]
             [--points N] [--range X] [--overlap] [--cache-capacity N |
             --no-cache] [--share-subresults on|off]
             [--no-exact] [--budget RUNS] [--time-budget MS]
             [--portfolio-members default|all|ID,ID,...] [--drop-after K]
             [--trace on|off]  # attach "trace" stage breakdowns to outcome lines
             [--metrics on|off] [--stats-interval SECS [--stats-output FILE]]
             # --stats-interval emits one JSONL observability snapshot per
             # interval (stderr unless --stats-output): scheduler queue/in-flight
             # state, cache + sub-cache hit/miss/eviction counts, metric registry
             # request lines: {"file": "app.psi"} | {"text": "pipesched-instance v1..."}
             #   | {"kind": "E2", "stages": 8, "processors": 5, "seed": 7}
             #   (+ optional "name", "points", "range", "overlap", "deadline_ms")
             [--deadline-ms MS]  # default per-request deadline for lines without
             # their own "deadline_ms" (0 = none). An expired request answers
             # {"ok": false, "timed_out": true, ...}; a request whose deadline
             # lands mid-solve returns the partial front flagged "degraded".
             [--fault-spec SPEC]  # arm fault injection (see README Resilience;
             # also via the PIPESCHED_FAULT_SPEC environment variable), e.g.
             # 'net.read=p:0.05;member.H3=count:2;sched.submit=latency:20,noerror'
             [--listen HOST:PORT [--port-file FILE] [--max-connections N]
              [--request-timeout-ms MS] [--idle-timeout-ms MS]]
             # network mode: multi-client HTTP/1.1 server (port 0 = ephemeral;
             # --port-file publishes "HOST PORT" once bound, removed on drain).
             # POST /solve takes the JSONL bodies above (responses byte-identical
             # to stdio mode, 503 + net.shed_total when the queue is saturated;
             # X-Deadline-Ms sets a per-POST default deadline, 504 when every
             # line times out); GET /stats, /healthz, /metrics (Prometheus)
             # expose the observability plane. Stalled mid-request connections
             # get 408 after --request-timeout-ms; idle keep-alive connections
             # close after --idle-timeout-ms (0 disables either).
             # SIGINT/SIGTERM drain gracefully in both modes and exit 0.
  generate   make a random instance file
             --kind E1..E4 --stages N --processors P [--seed S] [--name TEXT]
             [--hetero] [--bw-min X --bw-max Y] [--output FILE]
  solve      run mapping heuristics on an instance
             --instance FILE (--period X | --latency X) [--heuristic H1..H6|all]
             [--refine] [--baselines] [--deal] [--mapping-out FILE] [--json]
  eval       evaluate a mapping file against an instance
             --instance FILE --mapping FILE [--overlap] [--json]
  simulate   discrete-event simulation of a mapping
             --instance FILE --mapping FILE [--datasets N] [--warmup N]
             [--release X] [--jitter A] [--jitter-transfer A] [--seed S]
             [--trials N] [--gantt] [--gantt-width N] [--trace-csv FILE]
             [--deal [--discipline ordered|substreams]]  # replicated mapping
  pareto     heuristic Pareto front of one instance
             --instance FILE [--points N] [--range X] [--exact]
  sweep      regenerate one panel of paper Figures 2-7
             --kind E1..E4 --stages N --processors P [--pairs N] [--points N]
             [--seed S] [--overlap] [--csv]
  table1     regenerate one experiment column block of paper Table 1
             --kind E1..E4 [--processors P] [--pairs N] [--stages N,N,...]
  stats      observability snapshot as pretty JSON: the full metric registry
             (counters, gauges, latency histograms with p50/p90/p99), plus
             cache stats when traffic was pumped through the service
             [--input FILE.jsonl]  # solve these requests first, then snapshot
             [--format json|prometheus]  # prometheus = the same text exposition
             #   serve --listen answers on GET /metrics
             [--points N] [--range X] [--overlap] [service knobs as in serve]
  help       print this text

files use the pipesched-instance / pipesched-mapping v1 text formats
(see include/pipesched/io/format.hpp).
)";
}

int runCli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  if (args.empty()) {
    err << usageText();
    return 2;
  }
  const std::string& command = args.front();
  const std::vector<std::string> rest(args.begin() + 1, args.end());

  using Handler = int (*)(const ArgList&, std::ostream&, std::ostream&);
  struct Spec {
    Handler handler;
    std::vector<std::string> flags;
  };
  static const std::map<std::string, Spec> commands = {
      {"batch",
       {detail::cmdBatch,
        {"scenarios", "serial", "no-cache", "no-exact", "overlap", "json", "stream"}}},
      {"serve",
       {detail::cmdServe, {"serial", "no-cache", "no-exact", "overlap"}}},
      {"generate", {detail::cmdGenerate, {"hetero"}}},
      {"solve", {detail::cmdSolve, {"refine", "baselines", "deal", "json"}}},
      {"eval", {detail::cmdEval, {"overlap", "json"}}},
      {"simulate", {detail::cmdSimulate, {"gantt", "deal"}}},
      {"pareto", {detail::cmdPareto, {"exact"}}},
      {"sweep", {detail::cmdSweep, {"overlap", "csv"}}},
      {"table1", {detail::cmdTable1, {}}},
      {"stats", {detail::cmdStats, {"serial", "no-cache", "no-exact", "overlap"}}},
  };

  if (command == "help" || command == "--help" || command == "-h") {
    out << usageText();
    return 0;
  }
  const auto it = commands.find(command);
  if (it == commands.end()) {
    err << "pipesched: unknown command '" << command << "'\n\n" << usageText();
    return 2;
  }
  try {
    const ArgList parsed(rest, it->second.flags);
    const int code = it->second.handler(parsed, out, err);
    parsed.assertConsumed();
    return code;
  } catch (const UsageError& e) {
    err << "pipesched " << command << ": " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    err << "pipesched " << command << ": " << e.what() << "\n";
    return 1;
  } catch (...) {
    err << "pipesched " << command << ": unknown error\n";
    return 1;
  }
}

int runCli(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return runCli(args, out, err);
}

}  // namespace pipesched::cli
