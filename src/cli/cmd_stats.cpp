// `stats` — one-shot observability snapshot: enable metrics, optionally pump
// a JSONL request file through the scheduling service so the instrumentation
// sees real traffic, then print the full metric registry (counters, gauges,
// latency histograms with p50/p90/p99) as pretty JSON. With no --input the
// output is the preregistered metric catalog at zero — a machine-readable
// list of everything the instrumentation can emit.
#include <fstream>
#include <memory>
#include <ostream>
#include <vector>

#include "cli_internal.hpp"
#include "pipesched/io/json.hpp"
#include "pipesched/obs/exposition.hpp"
#include "pipesched/obs/metrics.hpp"
#include "pipesched/stream/source.hpp"

namespace pipesched::cli::detail {

int cmdStats(const ArgList& args, std::ostream& out, std::ostream& /*err*/) {
  // --format json (default): pretty JSON with cache stats; --format
  // prometheus: the same registry as text exposition — the offline twin of
  // serve --listen's GET /metrics.
  const std::string format = args.getOr("format", "json");
  if (format != "json" && format != "prometheus") {
    throw UsageError("--format must be 'json' or 'prometheus', not '" + format + "'");
  }

  // Metrics on for the duration of the command only (the CLI is re-entered
  // in-process by tests); reset first so the snapshot reflects this run.
  obs::ScopedMetricsEnabled metricsOn(true);
  obs::registry().reset();
  obs::preregisterStandardMetrics();

  bool ranService = false;
  std::size_t requests = 0;
  std::size_t failed = 0;
  service::CacheStats cache;
  service::CacheStats sub;
  if (const auto path = args.get("input")) {
    const service::ServiceConfig config = serviceConfigFromArgs(args);
    stream::JsonlDefaults defaults;
    defaults.sweep =
        service::SweepSpec{args.getSize("points", 24), args.getReal("range", 3)};
    defaults.model =
        args.has("overlap") ? core::CommModel::kOverlapped : core::CommModel::kSequential;
    auto file = std::make_unique<std::ifstream>(*path);
    if (!*file) throw std::runtime_error("cannot open input: " + *path);
    stream::JsonlSource source(std::move(file), defaults);
    std::vector<service::Request> batch;
    while (std::optional<service::Request> request = source.next()) {
      batch.push_back(std::move(*request));
    }
    service::SchedulingService svc(config);
    const service::BatchResult result = svc.solveBatch(batch);
    requests = result.stats.requests;
    failed = result.stats.failed;
    cache = svc.cacheStats();
    sub = svc.subCacheStats();
    ranService = true;
  }
  args.assertConsumed();

  if (format == "prometheus") {
    out << obs::renderSnapshotPrometheus(obs::registry().snapshot());
    return failed == 0 ? 0 : 1;
  }

  io::JsonWriter w(out, /*pretty=*/true);
  w.beginObject();
  w.kv("requests", requests);
  w.key("metrics");
  obs::writeSnapshotJson(obs::registry().snapshot(), w);
  if (ranService) {
    w.key("cache");
    writeCacheStatsJson(w, cache);
    w.key("sub_cache");
    writeCacheStatsJson(w, sub);
  }
  w.endObject();
  out << "\n";
  return failed == 0 ? 0 : 1;
}

}  // namespace pipesched::cli::detail
