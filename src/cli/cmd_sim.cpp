// `simulate` — DES validation of a mapping, with optional jitter, robustness
// trials, Gantt rendering and trace export.
#include <fstream>
#include <ostream>

#include "cli_internal.hpp"
#include "pipesched/exp/report.hpp"
#include "pipesched/sim/perturbation.hpp"
#include "pipesched/sim/replicated_sim.hpp"
#include "pipesched/sim/trace.hpp"

namespace pipesched::cli::detail {

namespace {

/// `simulate --deal`: the mapping file holds a replicated (deal) mapping;
/// run the replicated DES and compare against the replication cost model.
int simulateDeal(const ArgList& args, const io::Instance& instance, std::ostream& out) {
  const core::ReplicatedMapping mapping = io::readReplicatedMappingFromFile(
      args.require("mapping"), instance.pipeline.stageCount());

  sim::SimConfig config;
  config.datasetCount = args.getSize("datasets", 601);
  config.warmup = args.getSize("warmup", config.datasetCount / 3);
  config.releaseInterval = args.getReal("release", 0);
  const std::string disciplineName = args.getOr("discipline", "ordered");
  sim::DealDiscipline discipline;
  if (disciplineName == "ordered") {
    discipline = sim::DealDiscipline::kStreamOrdered;
  } else if (disciplineName == "substreams") {
    discipline = sim::DealDiscipline::kIndependentSubstreams;
  } else {
    throw UsageError("--discipline must be 'ordered' or 'substreams'");
  }
  args.assertConsumed();

  const core::Evaluator eval(instance.pipeline, instance.platform);
  const core::Metrics predicted = core::evaluateReplicated(eval, mapping);
  const sim::SimReport report = sim::simulateReplicated(eval, mapping, config, discipline);

  out << "deal mapping: " << mapping.describe() << "\n"
      << "discipline:   " << disciplineName << ", datasets " << config.datasetCount << "\n\n";
  exp::TextTable table;
  table.setHeader({"metric", "replication model", "simulated"});
  table.addRow({"period", exp::formatReal(predicted.period, 6),
                exp::formatReal(report.steadyStatePeriod, 6)});
  table.addRow({"max latency", exp::formatReal(predicted.latency, 6),
                exp::formatReal(report.maxLatency, 6)});
  table.print(out);
  out << "(the model is a lower bound under rendezvous semantics; see DESIGN.md §5)\n";
  return 0;
}

}  // namespace

int cmdSimulate(const ArgList& args, std::ostream& out, std::ostream& /*err*/) {
  const io::Instance instance = loadInstance(args);
  if (args.has("deal")) return simulateDeal(args, instance, out);
  const core::IntervalMapping mapping = loadMapping(args, instance);

  sim::SimConfig config;
  config.datasetCount = args.getSize("datasets", 200);
  config.warmup = args.getSize("warmup", config.datasetCount / 4);
  config.releaseInterval = args.getReal("release", 0);

  sim::JitterModel jitter;
  jitter.computeAmplitude = args.getReal("jitter", 0);
  jitter.transferAmplitude = args.getReal("jitter-transfer", jitter.computeAmplitude);
  jitter.seed = args.getU64("seed", 1);

  const std::size_t trials = args.getSize("trials", 1);
  const bool gantt = args.has("gantt");
  const std::size_t ganttWidth = args.getSize("gantt-width", 100);
  const std::size_t ganttDatasets = args.getSize("gantt-datasets", 8);
  const auto traceCsv = args.get("trace-csv");
  args.assertConsumed();

  const core::Evaluator eval(instance.pipeline, instance.platform);
  const core::Metrics predicted = eval.evaluate(mapping);

  if (trials > 1) {
    const sim::RobustnessReport report =
        sim::measureRobustness(eval, mapping, config, jitter, trials);
    out << "robustness over " << trials << " jittered trials (amplitude compute="
        << exp::formatReal(jitter.computeAmplitude, 2)
        << ", transfer=" << exp::formatReal(jitter.transferAmplitude, 2) << ")\n";
    exp::TextTable table;
    table.setHeader({"metric", "predicted", "mean", "worst", "degradation"});
    table.addRow({"period", exp::formatReal(report.nominalPeriod, 4),
                  exp::formatReal(report.meanPeriod, 4), exp::formatReal(report.worstPeriod, 4),
                  exp::formatReal(report.periodDegradation(), 3)});
    table.addRow({"max latency", exp::formatReal(report.nominalLatency, 4),
                  exp::formatReal(report.meanMaxLatency, 4),
                  exp::formatReal(report.worstMaxLatency, 4),
                  exp::formatReal(report.latencyDegradation(), 3)});
    table.print(out);
    return 0;
  }

  config.recordTrace = gantt || traceCsv.has_value();
  const sim::SimReport report =
      jitter.computeAmplitude > 0 || jitter.transferAmplitude > 0
          ? sim::simulatePipelineJittered(eval, mapping, config, jitter)
          : sim::simulatePipeline(eval, mapping, config);

  out << "datasets: " << config.datasetCount
      << ", release interval: " << exp::formatReal(config.releaseInterval, 4)
      << (config.releaseInterval == 0 ? " (saturated)" : "") << ", events: "
      << report.eventCount << "\n\n";
  exp::TextTable table;
  table.setHeader({"metric", "model (Eq. 1/2)", "simulated"});
  table.addRow({"period", exp::formatReal(predicted.period, 6),
                exp::formatReal(report.steadyStatePeriod, 6)});
  table.addRow({"latency", exp::formatReal(predicted.latency, 6),
                exp::formatReal(config.releaseInterval == 0 && config.datasetCount > 1
                                    ? report.latencies.front()
                                    : report.maxLatency,
                                6)});
  table.addRow({"makespan", "-", exp::formatReal(report.makespan, 6)});
  table.print(out);

  if (gantt) {
    sim::GanttOptions options;
    options.width = ganttWidth;
    options.maxDatasets = ganttDatasets;
    out << "\n" << sim::renderGantt(mapping, report, options);
  }
  if (traceCsv) {
    std::ofstream file(*traceCsv);
    if (!file) throw std::runtime_error("cannot open for writing: " + *traceCsv);
    sim::writeTraceCsv(file, report);
    out << "\ntrace written to " << *traceCsv << " (" << report.trace.size() << " events)\n";
  }
  return 0;
}

}  // namespace pipesched::cli::detail
