// `generate`, `solve`, `eval` — instance creation, heuristic runs and mapping
// evaluation.
#include <algorithm>
#include <ostream>

#include "cli_internal.hpp"
#include "pipesched/exp/report.hpp"
#include "pipesched/heuristics/annealing.hpp"
#include "pipesched/heuristics/deal.hpp"
#include "pipesched/heuristics/greedy_probe.hpp"
#include "pipesched/heuristics/local_search.hpp"
#include "pipesched/io/json.hpp"

namespace pipesched::cli::detail {

namespace {

using core::Evaluator;
using core::IntervalMapping;
using core::Metrics;
using heuristics::Objective;

}  // namespace

int cmdGenerate(const ArgList& args, std::ostream& out, std::ostream& /*err*/) {
  const workload::ExperimentKind kind = parseKind(args.require("kind"));
  const std::size_t stages = args.getSize("stages", 0);
  const std::size_t processors = args.getSize("processors", 0);
  if (stages == 0) throw UsageError("--stages must be >= 1");
  if (processors == 0) throw UsageError("--processors must be >= 1");
  const std::uint64_t seed = args.getU64("seed", 1);
  const std::string name = args.getOr("name", "");
  const bool hetero = args.has("hetero");
  const Real bwMin = args.getReal("bw-min", 1);
  const Real bwMax = args.getReal("bw-max", 20);
  const auto outputPath = args.get("output");
  args.assertConsumed();

  workload::Rng rng(seed);
  io::Instance instance{
      workload::randomPipeline(kind, stages, rng),
      hetero ? workload::randomHeterogeneousPlatform(processors, rng, bwMin, bwMax)
             : workload::randomPlatform(processors, rng),
      name};
  (void)outputPath;  // consumed above; writeToFileOr re-reads by name
  writeToFileOr(args, "output", out, [&](std::ostream& os) { io::writeInstance(os, instance); });
  return 0;
}

namespace {

/// One solve-table row.
struct SolveRow {
  std::string name;
  heuristics::Result result;
  Objective objective{};
};

void printSolveTable(std::ostream& out, const std::vector<SolveRow>& rows) {
  exp::TextTable table;
  table.setHeader({"heuristic", "success", "period", "latency", "intervals", "mapping"});
  for (const SolveRow& row : rows) {
    table.addRow({row.name, row.result.success ? "yes" : "no",
                  exp::formatReal(row.result.metrics.period, 4),
                  exp::formatReal(row.result.metrics.latency, 4),
                  std::to_string(row.result.mapping.intervalCount()),
                  row.result.mapping.describe()});
  }
  table.print(out);
}

}  // namespace

int cmdSolve(const ArgList& args, std::ostream& out, std::ostream& err) {
  const io::Instance instance = loadInstance(args);
  const bool hasPeriod = args.has("period");
  const bool hasLatency = args.has("latency");
  if (hasPeriod == hasLatency) {
    throw UsageError("exactly one of --period / --latency is required");
  }
  const Objective objective =
      hasPeriod ? Objective::kMinLatencyForPeriod : Objective::kMinPeriodForLatency;
  const Real threshold = hasPeriod ? args.requireReal("period") : args.requireReal("latency");
  const std::string spec = args.getOr("heuristic", "all");
  const bool refine = args.has("refine");
  const bool baselines = args.has("baselines");
  const bool deal = args.has("deal");
  const bool json = args.has("json");
  const auto mappingOut = args.get("mapping-out");
  const auto dealOut = args.get("deal-out");
  args.assertConsumed();
  if (dealOut && !deal) throw UsageError("--deal-out requires --deal");
  if (deal && !hasPeriod) {
    throw UsageError("--deal needs a --period threshold (it minimizes the period)");
  }
  if (deal && !instance.platform.isCommHomogeneous()) {
    throw UsageError("--deal needs a communication-homogeneous platform");
  }

  const Evaluator eval(instance.pipeline, instance.platform);

  std::vector<SolveRow> rows;
  for (auto& h : parseHeuristics(spec)) {
    if (h->objective() != objective) continue;  // threshold type selects the family
    SolveRow row;
    row.name = h->name();
    row.objective = h->objective();
    row.result = refine ? heuristics::refineWithLocalSearch(eval, *h, threshold)
                        : h->run(eval, threshold);
    if (refine) row.name += "+LS";
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    throw UsageError("no heuristic matches the requested objective (H1-H4 take --period, "
                     "H5-H6 take --latency)");
  }
  if (baselines) {
    if (instance.platform.isCommHomogeneous()) {
      SolveRow probe;
      probe.name = "B1-GreedyProbe";
      probe.objective = objective;
      probe.result = heuristics::greedyProbeHeuristic(eval, objective, threshold);
      rows.push_back(std::move(probe));
    }
    SolveRow ls;
    ls.name = "B2-LocalSearch";
    ls.objective = objective;
    const auto lsResult = heuristics::localSearch(eval, eval.optimalLatencyMapping(),
                                                  objective, threshold);
    ls.result.mapping = lsResult.mapping;
    ls.result.metrics = lsResult.metrics;
    ls.result.success = lsResult.feasible;
    rows.push_back(std::move(ls));

    SolveRow sa;
    sa.name = "B3-Annealing";
    sa.objective = objective;
    const auto saResult = heuristics::anneal(eval, eval.optimalLatencyMapping(), objective,
                                             threshold, heuristics::AnnealingOptions{});
    sa.result.mapping = saResult.mapping;
    sa.result.metrics = saResult.metrics;
    sa.result.success = saResult.feasible;
    rows.push_back(std::move(sa));
  }

  // Best = feasible row with the smallest optimized criterion.
  const SolveRow* best = nullptr;
  for (const SolveRow& row : rows) {
    if (!row.result.success) continue;
    const Real primary = objective == Objective::kMinLatencyForPeriod
                             ? row.result.metrics.latency
                             : row.result.metrics.period;
    const Real bestPrimary =
        best == nullptr ? kInfinity
                        : (objective == Objective::kMinLatencyForPeriod
                               ? best->result.metrics.latency
                               : best->result.metrics.period);
    if (primary < bestPrimary) best = &row;
  }

  if (json) {
    if (best == nullptr) {
      err << "no heuristic met the threshold\n";
      return 1;
    }
    io::writeMappingJson(out, best->result.mapping, &best->result.metrics);
  } else {
    out << "instance: " << instance.pipeline.describe() << ", "
        << instance.platform.describe() << "\n";
    out << (hasPeriod ? "objective: min latency s.t. period <= "
                      : "objective: min period s.t. latency <= ")
        << exp::formatReal(threshold, 4) << "\n\n";
    printSolveTable(out, rows);
    if (best != nullptr) out << "\nbest: " << best->name << "\n";
    if (deal) {
      const heuristics::DealResult dealResult = heuristics::spMonoPWithDeal(eval, threshold);
      out << "\ndeal extension (splits + bottleneck replication):\n"
          << "  mapping: " << dealResult.mapping.describe() << "\n"
          << "  period " << exp::formatReal(dealResult.metrics.period, 4) << ", latency "
          << exp::formatReal(dealResult.metrics.latency, 4) << ", replications "
          << dealResult.replications << ", "
          << (dealResult.success ? "meets the bound" : "does NOT meet the bound") << "\n";
      if (dealOut) {
        io::writeReplicatedMappingToFile(*dealOut, dealResult.mapping);
        out << "  written to " << *dealOut << "\n";
      }
    }
  }

  if (best == nullptr) {
    if (!json) err << "no heuristic met the threshold\n";
    return 1;
  }
  if (mappingOut) io::writeMappingToFile(*mappingOut, best->result.mapping);
  return 0;
}

int cmdEval(const ArgList& args, std::ostream& out, std::ostream& /*err*/) {
  const io::Instance instance = loadInstance(args);
  const IntervalMapping mapping = loadMapping(args, instance);
  const bool overlap = args.has("overlap");
  const bool json = args.has("json");
  args.assertConsumed();

  const Evaluator eval(instance.pipeline, instance.platform,
                       overlap ? core::CommModel::kOverlapped : core::CommModel::kSequential);
  const Metrics metrics = eval.evaluate(mapping);

  if (json) {
    io::writeMappingJson(out, mapping, &metrics);
    return 0;
  }
  out << "mapping:  " << mapping.describe() << "\n";
  out << "model:    " << (overlap ? "overlapped (ablation)" : "sequential (paper Eq. 1/2)")
      << "\n";
  out << "period:   " << exp::formatReal(metrics.period, 6) << "\n";
  out << "latency:  " << exp::formatReal(metrics.latency, 6) << "\n\n";
  exp::TextTable table;
  table.setHeader({"interval", "stages", "processor", "input", "compute", "output", "cycle"});
  for (std::size_t j = 0; j < mapping.intervalCount(); ++j) {
    const core::CycleBreakdown b = eval.breakdown(mapping, j);
    const core::Interval iv = mapping.interval(j);
    table.addRow({std::to_string(j) + (j == metrics.bottleneckInterval ? " *" : ""),
                  "[" + std::to_string(iv.first) + "," + std::to_string(iv.last) + "]",
                  "P" + std::to_string(mapping.processor(j)), exp::formatReal(b.input, 4),
                  exp::formatReal(b.compute, 4), exp::formatReal(b.output, 4),
                  exp::formatReal(overlap ? b.overlapped() : b.sequential(), 4)});
  }
  table.print(out);
  out << "(* = bottleneck interval)\n";
  return 0;
}

}  // namespace pipesched::cli::detail
