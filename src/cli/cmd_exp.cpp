// `pareto`, `sweep`, `table1` — the experiment drivers behind the paper's
// evaluation artifacts, exposed on the command line.
#include <ostream>
#include <sstream>

#include "cli_internal.hpp"
#include "pipesched/exact/exhaustive.hpp"
#include "pipesched/exp/pareto_study.hpp"
#include "pipesched/exp/report.hpp"
#include "pipesched/exp/sweep.hpp"

namespace pipesched::cli::detail {

int cmdPareto(const ArgList& args, std::ostream& out, std::ostream& /*err*/) {
  const io::Instance instance = loadInstance(args);
  exp::ParetoStudyConfig config;
  config.pointsPerHeuristic = args.getSize("points", config.pointsPerHeuristic);
  config.range = args.getReal("range", config.range);
  const bool exact = args.has("exact");
  args.assertConsumed();

  const core::Evaluator eval(instance.pipeline, instance.platform);
  const exp::ParetoStudy study = exp::runParetoStudy(eval, config);
  exp::printParetoStudy(out, study);

  if (exact) {
    const std::size_t n = instance.pipeline.stageCount();
    const std::size_t p = instance.platform.processorCount();
    if (n > 12 || p > 6) {
      throw UsageError("--exact needs a small instance (n <= 12, p <= 6); this one is n=" +
                       std::to_string(n) + ", p=" + std::to_string(p));
    }
    const auto exactFront = exact::exhaustiveParetoFront(eval);
    out << "\nExact Pareto front (" << exactFront.size() << " points)\n";
    exp::TextTable table;
    table.setHeader({"period", "latency"});
    for (const core::ParetoPoint& point : exactFront) {
      table.addRow({exp::formatReal(point.period, 3), exp::formatReal(point.latency, 3)});
    }
    table.print(out);
    const exp::FrontGap gap = exp::frontGap(exactFront, study.merged);
    out << "\nheuristic-front gap: mean +" << exp::formatReal(gap.meanRelativeExcess * 100, 2)
        << "% latency, max +" << exp::formatReal(gap.maxRelativeExcess * 100, 2) << "%, "
        << gap.uncovered << " exact period(s) unreachable\n";
  }
  return 0;
}

int cmdSweep(const ArgList& args, std::ostream& out, std::ostream& /*err*/) {
  exp::SweepConfig config;
  config.kind = parseKind(args.require("kind"));
  config.stages = args.getSize("stages", config.stages);
  config.processors = args.getSize("processors", config.processors);
  config.pairs = args.getSize("pairs", config.pairs);
  config.points = args.getSize("points", config.points);
  config.seed = args.getU64("seed", config.seed);
  if (args.has("overlap")) config.model = core::CommModel::kOverlapped;
  const bool csv = args.has("csv");
  args.assertConsumed();

  const exp::SweepResult result = exp::runBiCriteriaSweep(config);
  if (csv) {
    exp::writeSweepCsv(out, result);
  } else {
    std::ostringstream title;
    title << workload::experimentName(config.kind) << ", n=" << config.stages
          << ", p=" << config.processors;
    exp::printSweep(out, result, title.str());
  }
  return 0;
}

int cmdTable1(const ArgList& args, std::ostream& out, std::ostream& /*err*/) {
  const workload::ExperimentKind kind = parseKind(args.require("kind"));
  const std::size_t processors = args.getSize("processors", 10);
  const std::size_t pairs = args.getSize("pairs", 50);
  const std::uint64_t seed = args.getU64("seed", 20070628);

  std::vector<std::size_t> stageCounts = {5, 10, 20, 40};
  if (const auto spec = args.get("stages")) {
    stageCounts.clear();
    std::size_t start = 0;
    while (start <= spec->size()) {
      const std::size_t comma = spec->find(',', start);
      const std::string token =
          spec->substr(start, comma == std::string::npos ? std::string::npos : comma - start);
      try {
        std::size_t used = 0;
        const unsigned long value = std::stoul(token, &used);
        if (used != token.size() || value == 0) throw std::invalid_argument(token);
        stageCounts.push_back(value);
      } catch (const std::exception&) {
        throw UsageError("--stages expects a comma-separated list of positive integers");
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  args.assertConsumed();

  const exp::FailureThresholdReport report =
      exp::failureThresholds(kind, stageCounts, processors, pairs, seed);
  exp::printFailureThresholds(out, report);
  return 0;
}

}  // namespace pipesched::cli::detail
