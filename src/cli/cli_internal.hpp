// Private helpers shared by the pipesched CLI command implementations.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "pipesched/cli/args.hpp"
#include "pipesched/heuristics/registry.hpp"
#include "pipesched/io/format.hpp"
#include "pipesched/io/json.hpp"
#include "pipesched/service/service.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::cli::detail {

/// Reads an on/off option: absent -> `fallback`; any value other than
/// "on"/"off" is a UsageError.
[[nodiscard]] bool parseOnOff(const ArgList& args, const std::string& name, bool fallback);

/// {entries, hits, misses, evictions, hit_ratio} as one JSON object — the
/// cache block shared by `batch --json`, `stats`, and the serve snapshot
/// emitter, so eviction counts surface identically everywhere.
void writeCacheStatsJson(io::JsonWriter& w, const service::CacheStats& stats);

/// "E1".."E4" (case-insensitive) -> ExperimentKind; UsageError otherwise.
[[nodiscard]] workload::ExperimentKind parseKind(const std::string& text);

/// "H1".."H6" -> the heuristic; "all" -> all six. UsageError otherwise.
[[nodiscard]] std::vector<std::unique_ptr<heuristics::MappingHeuristic>> parseHeuristics(
    const std::string& spec);

/// Loads --instance; UsageError when the option is missing.
[[nodiscard]] io::Instance loadInstance(const ArgList& args);

/// Loads --mapping and validates it against the instance.
[[nodiscard]] core::IntervalMapping loadMapping(const ArgList& args,
                                                const io::Instance& instance);

/// Writes via `body` either to the file named by --output/-o style option
/// `name` or, when absent, to `fallback`.
void writeToFileOr(const ArgList& args, const std::string& name, std::ostream& fallback,
                   const std::function<void(std::ostream&)>& body);

/// The service knobs shared by `batch` and `serve` (one reader, so the two
/// commands cannot drift): --threads/--serial, --cache-capacity/--no-cache,
/// --no-exact, --budget, --time-budget.
[[nodiscard]] service::ServiceConfig serviceConfigFromArgs(const ArgList& args);

/// "default" -> {} (the service default), "all" -> the full catalog, else a
/// comma list of member ids. Validates against the registry: an unknown id
/// is a UsageError here, not a per-request failure later.
[[nodiscard]] std::vector<std::string> parsePortfolioMembers(const std::string& spec);

/// Test seam for serve's graceful shutdown: performs exactly what the
/// SIGINT/SIGTERM handler does (stop flag + listen-server wake), without
/// delivering a real signal. Safe from any thread.
void requestServeShutdown();

// Command entry points (one per subcommand).
int cmdBatch(const ArgList& args, std::ostream& out, std::ostream& err);
int cmdServe(const ArgList& args, std::ostream& out, std::ostream& err);
int cmdGenerate(const ArgList& args, std::ostream& out, std::ostream& err);
int cmdSolve(const ArgList& args, std::ostream& out, std::ostream& err);
int cmdEval(const ArgList& args, std::ostream& out, std::ostream& err);
int cmdSimulate(const ArgList& args, std::ostream& out, std::ostream& err);
int cmdPareto(const ArgList& args, std::ostream& out, std::ostream& err);
int cmdSweep(const ArgList& args, std::ostream& out, std::ostream& err);
int cmdTable1(const ArgList& args, std::ostream& out, std::ostream& err);
int cmdStats(const ArgList& args, std::ostream& out, std::ostream& err);

}  // namespace pipesched::cli::detail
