#include "pipesched/cli/args.hpp"

#include <algorithm>

namespace pipesched::cli {

ArgList::ArgList(std::vector<std::string> args, const std::vector<std::string>& flagNames) {
  const auto isFlag = [&](const std::string& name) {
    return std::find(flagNames.begin(), flagNames.end(), name) != flagNames.end();
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    if (name.empty()) throw UsageError("stray '--'");
    if (const auto eq = name.find('='); eq != std::string::npos) {
      options_.push_back(Option{name.substr(0, eq), name.substr(eq + 1)});
      continue;
    }
    if (isFlag(name)) {
      options_.push_back(Option{std::move(name), std::nullopt});
      continue;
    }
    if (i + 1 >= args.size()) throw UsageError("option --" + name + " needs a value");
    options_.push_back(Option{std::move(name), args[++i]});
  }
}

const ArgList::Option* ArgList::find(const std::string& name) const {
  // Last occurrence wins (`--workers 2 --workers 4` means 4), and every
  // occurrence is consumed — earlier ones must not resurface as "unknown
  // option" in assertConsumed().
  const Option* found = nullptr;
  for (const Option& o : options_) {
    if (o.name == name) {
      o.consumed = true;
      found = &o;
    }
  }
  return found;
}

bool ArgList::has(const std::string& name) const { return find(name) != nullptr; }

std::optional<std::string> ArgList::get(const std::string& name) const {
  const Option* o = find(name);
  if (o == nullptr) return std::nullopt;
  if (!o->value) throw UsageError("option --" + name + " needs a value");
  return o->value;
}

std::string ArgList::getOr(const std::string& name, const std::string& fallback) const {
  const auto v = get(name);
  return v ? *v : fallback;
}

std::string ArgList::require(const std::string& name) const {
  const auto v = get(name);
  if (!v) throw UsageError("missing required option --" + name);
  return *v;
}

namespace {

Real parseRealOrThrow(const std::string& name, const std::string& text) {
  try {
    std::size_t used = 0;
    const Real value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw UsageError("option --" + name + ": '" + text + "' is not a number");
  }
}

}  // namespace

Real ArgList::getReal(const std::string& name, Real fallback) const {
  const auto v = get(name);
  return v ? parseRealOrThrow(name, *v) : fallback;
}

Real ArgList::requireReal(const std::string& name) const {
  return parseRealOrThrow(name, require(name));
}

std::size_t ArgList::getSize(const std::string& name, std::size_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  const Real value = parseRealOrThrow(name, *v);
  if (value < 0 || value != static_cast<Real>(static_cast<std::size_t>(value))) {
    throw UsageError("option --" + name + " must be a non-negative integer");
  }
  return static_cast<std::size_t>(value);
}

std::uint64_t ArgList::getU64(const std::string& name, std::uint64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  try {
    // std::stoull accepts a leading '-' and wraps silently ("-1" parses as
    // 2^64-1); a negative value must be rejected, not wrapped.
    if (v->find('-') != std::string::npos) throw std::invalid_argument(*v);
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(*v, &used);
    if (used != v->size()) throw std::invalid_argument(*v);
    return value;
  } catch (const std::exception&) {
    throw UsageError("option --" + name + ": '" + *v + "' is not an unsigned integer");
  }
}

void ArgList::assertConsumed() const {
  for (const Option& o : options_) {
    if (!o.consumed) throw UsageError("unknown option --" + o.name);
  }
}

}  // namespace pipesched::cli
