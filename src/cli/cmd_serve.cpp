// `serve` — the streaming front-end as a process: read JSONL request lines
// (stdin by default, --input FILE for scripts/tests), answer each with one
// JSONL outcome line as soon as it completes, in input order. The loop is
// incremental end to end: a request on line 1 is answered while line 10 000
// is still being read, and memory stays bounded by queue capacity + workers
// no matter how long the stream runs.
//
// Malformed lines are reported as {"line": N, "ok": false, "error": ...} and
// skipped — a server must not die because one client sent garbage. Exit code
// is 0 only when every line parsed and every request solved.
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <sstream>

#include "cli_internal.hpp"
#include "pipesched/io/json.hpp"
#include "pipesched/stream/engine.hpp"

namespace pipesched::cli::detail {

int cmdServe(const ArgList& args, std::ostream& out, std::ostream& err) {
  stream::JsonlDefaults defaults;
  defaults.sweep =
      service::SweepSpec{args.getSize("points", 24), args.getReal("range", 3)};
  defaults.model =
      args.has("overlap") ? core::CommModel::kOverlapped : core::CommModel::kSequential;

  stream::StreamConfig config;
  config.service = serviceConfigFromArgs(args);
  config.workers = config.service.threads;  // cross-request parallelism...
  config.service.threads = 0;               // ...within-request stays serial
  config.queueCapacity = args.getSize("queue-capacity", 64);

  std::unique_ptr<std::ifstream> file;
  std::istream* in = &std::cin;
  if (const auto path = args.get("input")) {
    file = std::make_unique<std::ifstream>(*path);
    if (!*file) throw std::runtime_error("cannot open input: " + *path);
    in = file.get();
  }
  args.assertConsumed();

  // Every line of output — outcome lines from the sink's emit side and
  // parse-error lines from the source-pull side — goes through one guarded
  // whole-line writer, so the two paths can never interleave mid-line and
  // corrupt the JSONL stream (pinned by the CliServe garbage-stress test).
  stream::JsonlLineWriter lineWriter(out);
  std::size_t parseErrors = 0;
  stream::JsonlSource source(*in, defaults,
                             [&](std::size_t line, const std::string& message) {
                               ++parseErrors;
                               std::ostringstream buffer;
                               io::JsonWriter w(buffer, /*pretty=*/false);
                               w.beginObject();
                               w.kv("line", line);
                               w.kv("ok", false);
                               w.kv("error", message);
                               w.endObject();
                               lineWriter.writeLine(std::move(buffer).str());
                             });

  // Tag each request with the input line it came from so outcome lines stay
  // correlatable even when malformed lines interleave: the wrapper records
  // the line per pull, and the sink pops in the same (input) order.
  std::deque<std::size_t> inputLines;
  class TaggingSource : public stream::Source {
   public:
    TaggingSource(stream::JsonlSource& inner, std::deque<std::size_t>& lines)
        : inner_(&inner), lines_(&lines) {}
    std::optional<service::Request> next() override {
      std::optional<service::Request> request = inner_->next();
      if (request) lines_->push_back(inner_->linesRead());
      return request;
    }

   private:
    stream::JsonlSource* inner_;
    std::deque<std::size_t>* lines_;
  };
  TaggingSource tagged(source, inputLines);
  stream::JsonlSink sink(lineWriter, &inputLines);
  stream::AsyncScheduler scheduler(config);
  const stream::EngineStats stats = stream::runStream(tagged, sink, scheduler);

  const stream::StreamStats s = scheduler.stats();
  const service::CacheStats sub = scheduler.subCacheStats();
  err << "serve: " << stats.requests << " request(s) — " << s.solved << " solved, "
      << s.cacheHits << " cache hit(s), " << s.coalesced << " coalesced, "
      << "sub_hits=" << sub.hits << ", " << stats.failed << " failed, " << parseErrors
      << " parse error(s) in " << stats.wallSeconds << " s\n";
  return (stats.failed == 0 && parseErrors == 0) ? 0 : 1;
}

}  // namespace pipesched::cli::detail
