// `serve` — the streaming front-end as a process, in two transports:
//
//   stdio (default): read JSONL request lines (stdin or --input FILE), answer
//   each with one JSONL outcome line as soon as it completes, in input order.
//   The loop is incremental end to end: a request on line 1 is answered while
//   line 10 000 is still being read, and memory stays bounded by queue
//   capacity + workers no matter how long the stream runs.
//
//   --listen HOST:PORT: a multi-client HTTP/1.1 server on a poll-based event
//   loop. POST /solve carries the same JSONL bodies through the same
//   AsyncScheduler (responses byte-identical to stdio outcome lines); GET
//   /stats, /healthz and /metrics expose the observability plane live. When
//   the scheduler queue saturates, new POSTs are shed with 503 (+
//   net.shed_total) instead of stalling the accept loop. Port 0 picks an
//   ephemeral port; --port-file FILE publishes "HOST PORT" for scripts.
//
// Both transports shut down gracefully on SIGINT/SIGTERM: refuse new work,
// drain the scheduler, emit a final stats snapshot (when stats emission is
// configured), exit 0.
//
// Malformed lines are reported as {"line": N, "ok": false, "error": ...} and
// skipped — a server must not die because one client sent garbage. Exit code
// is 0 only when every line parsed and every request solved (or the server
// was asked to stop and drained cleanly).
#include <csignal>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "cli_internal.hpp"
#include "pipesched/fault/fault.hpp"
#include "pipesched/io/json.hpp"
#include "pipesched/net/endpoints.hpp"
#include "pipesched/net/server.hpp"
#include "pipesched/obs/metrics.hpp"
#include "pipesched/stream/engine.hpp"

namespace pipesched::cli::detail {

namespace {

/// One observability snapshot line: coherent scheduler poll (queue depth,
/// in-flight, parked waiters — invariants hold mid-burst, see
/// AsyncScheduler::snapshot()), cache + sub-cache counters (hits, misses,
/// evictions), and the full metric registry.
std::string renderServeSnapshot(const stream::AsyncScheduler& scheduler,
                                std::size_t sequence, double uptimeSeconds) {
  const stream::SchedulerSnapshot snap = scheduler.snapshot();
  std::ostringstream buffer;
  io::JsonWriter w(buffer, /*pretty=*/false);
  w.beginObject();
  w.kv("type", "stats");
  w.kv("sequence", sequence);
  w.kv("uptime_seconds", uptimeSeconds);
  w.key("scheduler").beginObject();
  w.kv("submitted", static_cast<std::size_t>(snap.stream.submitted));
  w.kv("completed", static_cast<std::size_t>(snap.stream.completed));
  w.kv("in_flight", static_cast<std::size_t>(snap.inFlight));
  w.kv("inflight_keys", snap.inflightKeys);
  w.kv("parked_waiters", snap.parkedWaiters);
  w.kv("queue_depth", snap.queueDepth);
  w.kv("queue_capacity", snap.queueCapacity);
  w.kv("queue_high_water", snap.stream.queue.highWater);
  w.kv("backpressure_waits", static_cast<std::size_t>(snap.stream.queue.pushWaits));
  w.kv("solved", static_cast<std::size_t>(snap.stream.solved));
  w.kv("cache_hits", static_cast<std::size_t>(snap.stream.cacheHits));
  w.kv("coalesced", static_cast<std::size_t>(snap.stream.coalesced));
  w.kv("failed", static_cast<std::size_t>(snap.stream.failed));
  w.kv("max_in_flight", snap.stream.maxInFlight);
  w.endObject();
  w.key("cache");
  writeCacheStatsJson(w, scheduler.cacheStats());
  w.key("sub_cache");
  writeCacheStatsJson(w, scheduler.subCacheStats());
  w.key("metrics");
  obs::writeSnapshotJson(obs::registry().snapshot(), w);
  w.endObject();
  return std::move(buffer).str();
}

// -- Graceful shutdown plumbing ---------------------------------------------
// SIGINT/SIGTERM flip one atomic (the stdio loop polls it between lines) and
// poke the listen server's self-pipe (async-signal-safe requestStop). The
// handlers are installed only for the duration of a serve run and restored
// afterwards — the CLI is re-entered in-process by tests.

std::atomic<bool> g_shutdownRequested{false};
std::atomic<net::HttpServer*> g_listenServer{nullptr};

void handleShutdownSignal(int /*signum*/) {
  g_shutdownRequested.store(true);
  if (net::HttpServer* server = g_listenServer.load()) server->requestStop();
}

class ScopedSignalHandlers {
 public:
  ScopedSignalHandlers() {
    struct sigaction action {};
    action.sa_handler = handleShutdownSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: a blocked stdin read returns EINTR
    ::sigaction(SIGINT, &action, &previousInt_);
    ::sigaction(SIGTERM, &action, &previousTerm_);
  }
  ~ScopedSignalHandlers() {
    ::sigaction(SIGINT, &previousInt_, nullptr);
    ::sigaction(SIGTERM, &previousTerm_, nullptr);
    g_shutdownRequested.store(false);
  }
  ScopedSignalHandlers(const ScopedSignalHandlers&) = delete;
  ScopedSignalHandlers& operator=(const ScopedSignalHandlers&) = delete;

 private:
  struct sigaction previousInt_ {};
  struct sigaction previousTerm_ {};
};

/// Removes the published --port-file when the serve run ends — graceful
/// drain, signal-initiated stop, or error unwind alike — so scripts polling
/// for the file never read a port that no longer answers.
class PortFileGuard {
 public:
  explicit PortFileGuard(std::string path) : path_(std::move(path)) {}
  ~PortFileGuard() {
    if (!path_.empty()) std::remove(path_.c_str());
  }
  PortFileGuard(const PortFileGuard&) = delete;
  PortFileGuard& operator=(const PortFileGuard&) = delete;

 private:
  std::string path_;
};

/// --deadline-ms N: default per-request deadline applied to input lines that
/// carry no deadline_ms of their own. 0 (the default) disables it.
double deadlineDefaultFromArgs(const ArgList& args) {
  const double deadlineMs = args.getReal("deadline-ms", 0);
  if (deadlineMs < 0) throw UsageError("--deadline-ms must be >= 0");
  return deadlineMs;
}

/// Periodic snapshot emitter: a background thread that wakes every
/// `intervalSeconds` and emits one snapshot line. stop() is idempotent.
class SnapshotEmitter {
 public:
  SnapshotEmitter(double intervalSeconds, std::function<void()> emit) {
    if (intervalSeconds <= 0) return;
    thread_ = std::thread([this, intervalSeconds, emit = std::move(emit)] {
      std::unique_lock<std::mutex> lock(mutex_);
      for (;;) {
        if (cv_.wait_for(lock, std::chrono::duration<double>(intervalSeconds),
                         [&] { return done_; })) {
          return;
        }
        lock.unlock();
        emit();
        lock.lock();
      }
    });
  }

  ~SnapshotEmitter() { stop(); }

  void stop() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

int serveStdio(const ArgList& args, std::ostream& out, std::ostream& err) {
  // --trace attaches per-request "trace" breakdowns to outcome lines;
  // --stats-interval SECS emits one observability snapshot line per interval
  // (stderr unless --stats-output FILE). Both default --metrics to on.
  // Raise-only, like `batch`: an externally enabled flag is never lowered.
  const bool traceOn = parseOnOff(args, "trace", false);
  const double statsInterval = args.getReal("stats-interval", 0);
  if (statsInterval < 0) throw UsageError("--stats-interval must be >= 0");
  const bool metricsOn = parseOnOff(args, "metrics", traceOn || statsInterval > 0);
  obs::ScopedTracingEnabled tracingScope(traceOn || obs::tracingEnabled());
  obs::ScopedMetricsEnabled metricsScope(metricsOn || obs::metricsEnabled());
  std::unique_ptr<std::ofstream> statsFile;
  std::ostream* statsStream = &err;
  if (const auto path = args.get("stats-output")) {
    statsFile = std::make_unique<std::ofstream>(*path);
    if (!*statsFile) throw std::runtime_error("cannot open stats output: " + *path);
    statsStream = statsFile.get();
  }
  // Snapshot emission is configured when either knob is present. A
  // --stats-output file with no interval still gets its terminal snapshot —
  // previously that combination produced a 0-byte file because the final
  // emit was guarded on the interval alone.
  const bool wantStats = statsInterval > 0 || statsFile != nullptr;

  stream::JsonlDefaults defaults;
  defaults.sweep =
      service::SweepSpec{args.getSize("points", 24), args.getReal("range", 3)};
  defaults.model =
      args.has("overlap") ? core::CommModel::kOverlapped : core::CommModel::kSequential;
  defaults.deadlineMs = deadlineDefaultFromArgs(args);

  stream::StreamConfig config;
  config.service = serviceConfigFromArgs(args);
  config.workers = config.service.threads;  // cross-request parallelism...
  config.service.threads = 0;               // ...within-request stays serial
  config.queueCapacity = args.getSize("queue-capacity", 64);

  std::unique_ptr<std::ifstream> file;
  std::istream* in = &std::cin;
  if (const auto path = args.get("input")) {
    file = std::make_unique<std::ifstream>(*path);
    if (!*file) throw std::runtime_error("cannot open input: " + *path);
    in = file.get();
  }
  args.assertConsumed();

  ScopedSignalHandlers signals;

  // Every line of output — outcome lines from the sink's emit side and
  // parse-error lines from the source-pull side — goes through one guarded
  // whole-line writer, so the two paths can never interleave mid-line and
  // corrupt the JSONL stream (pinned by the CliServe garbage-stress test).
  stream::JsonlLineWriter lineWriter(out);
  std::size_t parseErrors = 0;
  // The error handler runs only on the source-pull (pump) thread, so one
  // reused render buffer suffices — capacity persists across errors.
  std::string errorBuffer;
  stream::JsonlSource source(*in, defaults,
                             [&](std::size_t line, const std::string& message) {
                               ++parseErrors;
                               errorBuffer.clear();
                               io::StringOutStream buffer(errorBuffer);
                               io::JsonWriter w(buffer, /*pretty=*/false);
                               w.beginObject();
                               w.kv("line", line);
                               w.kv("ok", false);
                               w.kv("error", message);
                               w.endObject();
                               lineWriter.writeLine(errorBuffer);
                             });

  // Tag each request with the input line it came from so outcome lines stay
  // correlatable even when malformed lines interleave: the wrapper records
  // the line per pull, and the sink pops in the same (input) order. The same
  // wrapper is the shutdown admission gate: once a stop was requested, next()
  // reports end-of-stream — the engine then drains what was accepted.
  std::deque<std::size_t> inputLines;
  class TaggingSource : public stream::Source {
   public:
    TaggingSource(stream::JsonlSource& inner, std::deque<std::size_t>& lines)
        : inner_(&inner), lines_(&lines) {}
    std::optional<service::Request> next() override {
      if (g_shutdownRequested.load()) return std::nullopt;  // refuse new work
      std::optional<service::Request> request = inner_->next();
      if (request) lines_->push_back(inner_->linesRead());
      return request;
    }

   private:
    stream::JsonlSource* inner_;
    std::deque<std::size_t>* lines_;
  };
  TaggingSource tagged(source, inputLines);
  stream::JsonlSink sink(lineWriter, &inputLines);
  stream::AsyncScheduler scheduler(config);

  // Snapshot lines share a guarded whole-line writer so they can never
  // interleave mid-line — but note they go to stderr (or the --stats-output
  // file), never into the stdout outcome stream.
  stream::JsonlLineWriter statsWriter(*statsStream);
  const auto startedAt = std::chrono::steady_clock::now();
  std::size_t statsSequence = 0;
  const auto emitSnapshot = [&] {
    const double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - startedAt).count();
    statsWriter.writeLine(renderServeSnapshot(scheduler, statsSequence++, uptime));
  };

  stream::EngineStats stats;
  {
    SnapshotEmitter emitter(statsInterval, emitSnapshot);
    stats = stream::runStream(tagged, sink, scheduler);
    emitter.stop();
  }
  // Terminal snapshot on clean EOF and on drain-after-signal alike, even
  // when the input ended mid-interval — so every configured run yields at
  // least one snapshot line.
  if (wantStats) emitSnapshot();
  const bool stopped = g_shutdownRequested.load();

  const stream::StreamStats s = scheduler.stats();
  const service::CacheStats cache = scheduler.cacheStats();
  const service::CacheStats sub = scheduler.subCacheStats();
  err << "serve: " << stats.requests << " request(s) — " << s.solved << " solved, "
      << s.cacheHits << " cache hit(s), " << s.coalesced << " coalesced, "
      << "sub_hits=" << sub.hits << ", evictions=" << cache.evictions << "+" << sub.evictions
      << ", " << stats.failed << " failed, " << parseErrors
      << " parse error(s) in " << stats.wallSeconds << " s"
      << (stopped ? " (stopped by signal, drained)" : "") << "\n";
  // A signal-initiated stop that drained cleanly is a success exit whatever
  // the stream had left unread.
  if (stopped) return 0;
  return (stats.failed == 0 && parseErrors == 0) ? 0 : 1;
}

int serveListen(const ArgList& args, const std::string& listenSpec, std::ostream& /*out*/,
                std::ostream& err) {
  const bool traceOn = parseOnOff(args, "trace", false);
  const double statsInterval = args.getReal("stats-interval", 0);
  if (statsInterval < 0) throw UsageError("--stats-interval must be >= 0");
  // Network mode defaults metrics ON: /metrics and /stats are the point of
  // exposing the plane. --metrics off still turns everything off.
  const bool metricsOn = parseOnOff(args, "metrics", true);
  obs::ScopedTracingEnabled tracingScope(traceOn || obs::tracingEnabled());
  obs::ScopedMetricsEnabled metricsScope(metricsOn || obs::metricsEnabled());
  if (obs::metricsEnabled()) {
    // Fresh, fully-enumerated registry: /metrics answers the whole catalog
    // from the first scrape, and counters start at zero for this server.
    obs::registry().reset();
    obs::preregisterStandardMetrics();
  }

  std::unique_ptr<std::ofstream> statsFile;
  std::ostream* statsStream = &err;
  if (const auto path = args.get("stats-output")) {
    statsFile = std::make_unique<std::ofstream>(*path);
    if (!*statsFile) throw std::runtime_error("cannot open stats output: " + *path);
    statsStream = statsFile.get();
  }
  const bool wantStats = statsInterval > 0 || statsFile != nullptr;

  stream::JsonlDefaults defaults;
  defaults.sweep =
      service::SweepSpec{args.getSize("points", 24), args.getReal("range", 3)};
  defaults.model =
      args.has("overlap") ? core::CommModel::kOverlapped : core::CommModel::kSequential;
  defaults.deadlineMs = deadlineDefaultFromArgs(args);

  stream::StreamConfig config;
  config.service = serviceConfigFromArgs(args);
  // Solves must run off the event loop: at least one worker even under
  // --serial (within-request solving stays serial either way).
  config.workers = std::max<std::size_t>(1, config.service.threads);
  config.service.threads = 0;
  config.queueCapacity = args.getSize("queue-capacity", 64);

  net::HttpServerConfig serverConfig;
  serverConfig.endpoint = net::parseEndpoint(listenSpec);
  serverConfig.maxConnections = args.getSize("max-connections", 64);
  serverConfig.requestTimeoutMs = static_cast<int>(
      args.getSize("request-timeout-ms",
                   static_cast<std::size_t>(serverConfig.requestTimeoutMs)));
  serverConfig.idleTimeoutMs = static_cast<int>(args.getSize(
      "idle-timeout-ms", static_cast<std::size_t>(serverConfig.idleTimeoutMs)));
  const auto portFile = args.get("port-file");
  args.assertConsumed();

  stream::AsyncScheduler scheduler(config);
  net::HttpServer server(serverConfig);

  stream::JsonlLineWriter statsWriter(*statsStream);
  const auto startedAt = std::chrono::steady_clock::now();
  const auto uptimeSeconds = [startedAt] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - startedAt)
        .count();
  };
  // The sequence is shared by the periodic emitter and GET /stats (any
  // thread), so snapshot consumers see one monotone numbering.
  auto statsSequence = std::make_shared<std::atomic<std::size_t>>(0);
  const auto renderSnapshot = [&scheduler, statsSequence, uptimeSeconds] {
    return renderServeSnapshot(scheduler, statsSequence->fetch_add(1), uptimeSeconds());
  };

  net::ServeEndpointsConfig endpoints;
  endpoints.defaults = defaults;
  endpoints.statsSnapshot = renderSnapshot;
  endpoints.draining = [&server] { return server.draining(); };
  endpoints.uptimeSeconds = uptimeSeconds;
  net::installServeEndpoints(server, scheduler, endpoints);

  server.bind();
  const net::Endpoint bound = server.local();
  err << "serve: listening on " << bound.str() << "\n";
  if (portFile) {
    std::ofstream f(*portFile);
    if (!f) throw std::runtime_error("cannot open port file: " + *portFile);
    f << bound.host << ' ' << bound.port << '\n';
  }
  // The port file is a liveness signal: published once the port answers,
  // removed as part of the graceful drain (SIGTERM and normal exit alike).
  PortFileGuard portFileGuard(portFile ? *portFile : std::string());

  // Publish the server to the signal handler only while run() owns it.
  g_listenServer.store(&server);
  ScopedSignalHandlers signals;
  {
    SnapshotEmitter emitter(statsInterval,
                            [&] { statsWriter.writeLine(renderSnapshot()); });
    server.run();  // returns once requestStop() finished the graceful drain
    emitter.stop();
  }
  g_listenServer.store(nullptr);
  scheduler.drain();  // all responses landed, so this returns immediately

  if (wantStats) statsWriter.writeLine(renderSnapshot());  // terminal snapshot

  const net::ServerStats ns = server.stats();
  const stream::StreamStats s = scheduler.stats();
  err << "serve: drained — " << ns.requests << " http request(s) on " << ns.accepted
      << " connection(s), " << static_cast<std::size_t>(s.completed)
      << " solve(s) (" << static_cast<std::size_t>(s.cacheHits) << " cache hit(s), "
      << static_cast<std::size_t>(s.failed) << " failed), " << ns.shed
      << " shed, " << ns.bytesRead << "B in / " << ns.bytesWritten << "B out in "
      << uptimeSeconds() << " s\n";
  return 0;
}

}  // namespace

int cmdServe(const ArgList& args, std::ostream& out, std::ostream& err) {
  // --fault-spec SPEC (or the PIPESCHED_FAULT_SPEC environment variable)
  // arms the fault-injection registry for the lifetime of this run. Scoped
  // so in-process reentry (tests driving runCli) never leaks an armed spec.
  std::string faultSpec;
  if (const auto spec = args.get("fault-spec")) {
    faultSpec = *spec;
  } else if (const char* env = std::getenv("PIPESCHED_FAULT_SPEC")) {
    faultSpec = env;
  }
  std::unique_ptr<fault::ScopedFaultSpec> faults;
  if (!faultSpec.empty()) {
    try {
      faults = std::make_unique<fault::ScopedFaultSpec>(faultSpec);
    } catch (const ModelError& error) {
      throw UsageError(error.what());
    }
  }
  if (const auto listen = args.get("listen")) {
    return serveListen(args, *listen, out, err);
  }
  return serveStdio(args, out, err);
}

/// Test seam: exactly what the SIGINT/SIGTERM handler does, callable from a
/// test thread without delivering a real signal.
void requestServeShutdown() { handleShutdownSignal(0); }

}  // namespace pipesched::cli::detail
