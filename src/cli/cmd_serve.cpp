// `serve` — the streaming front-end as a process: read JSONL request lines
// (stdin by default, --input FILE for scripts/tests), answer each with one
// JSONL outcome line as soon as it completes, in input order. The loop is
// incremental end to end: a request on line 1 is answered while line 10 000
// is still being read, and memory stays bounded by queue capacity + workers
// no matter how long the stream runs.
//
// Malformed lines are reported as {"line": N, "ok": false, "error": ...} and
// skipped — a server must not die because one client sent garbage. Exit code
// is 0 only when every line parsed and every request solved.
#include <chrono>
#include <condition_variable>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "cli_internal.hpp"
#include "pipesched/io/json.hpp"
#include "pipesched/obs/metrics.hpp"
#include "pipesched/stream/engine.hpp"

namespace pipesched::cli::detail {

namespace {

/// One observability snapshot line: coherent scheduler poll (queue depth,
/// in-flight, parked waiters — invariants hold mid-burst, see
/// AsyncScheduler::snapshot()), cache + sub-cache counters (hits, misses,
/// evictions), and the full metric registry.
std::string renderServeSnapshot(const stream::AsyncScheduler& scheduler,
                                std::size_t sequence, double uptimeSeconds) {
  const stream::SchedulerSnapshot snap = scheduler.snapshot();
  std::ostringstream buffer;
  io::JsonWriter w(buffer, /*pretty=*/false);
  w.beginObject();
  w.kv("type", "stats");
  w.kv("sequence", sequence);
  w.kv("uptime_seconds", uptimeSeconds);
  w.key("scheduler").beginObject();
  w.kv("submitted", static_cast<std::size_t>(snap.stream.submitted));
  w.kv("completed", static_cast<std::size_t>(snap.stream.completed));
  w.kv("in_flight", static_cast<std::size_t>(snap.inFlight));
  w.kv("inflight_keys", snap.inflightKeys);
  w.kv("parked_waiters", snap.parkedWaiters);
  w.kv("queue_depth", snap.queueDepth);
  w.kv("queue_capacity", snap.queueCapacity);
  w.kv("queue_high_water", snap.stream.queue.highWater);
  w.kv("backpressure_waits", static_cast<std::size_t>(snap.stream.queue.pushWaits));
  w.kv("solved", static_cast<std::size_t>(snap.stream.solved));
  w.kv("cache_hits", static_cast<std::size_t>(snap.stream.cacheHits));
  w.kv("coalesced", static_cast<std::size_t>(snap.stream.coalesced));
  w.kv("failed", static_cast<std::size_t>(snap.stream.failed));
  w.kv("max_in_flight", snap.stream.maxInFlight);
  w.endObject();
  w.key("cache");
  writeCacheStatsJson(w, scheduler.cacheStats());
  w.key("sub_cache");
  writeCacheStatsJson(w, scheduler.subCacheStats());
  w.key("metrics");
  obs::writeSnapshotJson(obs::registry().snapshot(), w);
  w.endObject();
  return std::move(buffer).str();
}

}  // namespace

int cmdServe(const ArgList& args, std::ostream& out, std::ostream& err) {
  // --trace attaches per-request "trace" breakdowns to outcome lines;
  // --stats-interval SECS emits one observability snapshot line per interval
  // (stderr unless --stats-output FILE). Both default --metrics to on.
  // Raise-only, like `batch`: an externally enabled flag is never lowered.
  const bool traceOn = parseOnOff(args, "trace", false);
  const double statsInterval = args.getReal("stats-interval", 0);
  if (statsInterval < 0) throw UsageError("--stats-interval must be >= 0");
  const bool metricsOn = parseOnOff(args, "metrics", traceOn || statsInterval > 0);
  obs::ScopedTracingEnabled tracingScope(traceOn || obs::tracingEnabled());
  obs::ScopedMetricsEnabled metricsScope(metricsOn || obs::metricsEnabled());
  std::unique_ptr<std::ofstream> statsFile;
  std::ostream* statsStream = &err;
  if (const auto path = args.get("stats-output")) {
    statsFile = std::make_unique<std::ofstream>(*path);
    if (!*statsFile) throw std::runtime_error("cannot open stats output: " + *path);
    statsStream = statsFile.get();
  }

  stream::JsonlDefaults defaults;
  defaults.sweep =
      service::SweepSpec{args.getSize("points", 24), args.getReal("range", 3)};
  defaults.model =
      args.has("overlap") ? core::CommModel::kOverlapped : core::CommModel::kSequential;

  stream::StreamConfig config;
  config.service = serviceConfigFromArgs(args);
  config.workers = config.service.threads;  // cross-request parallelism...
  config.service.threads = 0;               // ...within-request stays serial
  config.queueCapacity = args.getSize("queue-capacity", 64);

  std::unique_ptr<std::ifstream> file;
  std::istream* in = &std::cin;
  if (const auto path = args.get("input")) {
    file = std::make_unique<std::ifstream>(*path);
    if (!*file) throw std::runtime_error("cannot open input: " + *path);
    in = file.get();
  }
  args.assertConsumed();

  // Every line of output — outcome lines from the sink's emit side and
  // parse-error lines from the source-pull side — goes through one guarded
  // whole-line writer, so the two paths can never interleave mid-line and
  // corrupt the JSONL stream (pinned by the CliServe garbage-stress test).
  stream::JsonlLineWriter lineWriter(out);
  std::size_t parseErrors = 0;
  stream::JsonlSource source(*in, defaults,
                             [&](std::size_t line, const std::string& message) {
                               ++parseErrors;
                               std::ostringstream buffer;
                               io::JsonWriter w(buffer, /*pretty=*/false);
                               w.beginObject();
                               w.kv("line", line);
                               w.kv("ok", false);
                               w.kv("error", message);
                               w.endObject();
                               lineWriter.writeLine(std::move(buffer).str());
                             });

  // Tag each request with the input line it came from so outcome lines stay
  // correlatable even when malformed lines interleave: the wrapper records
  // the line per pull, and the sink pops in the same (input) order.
  std::deque<std::size_t> inputLines;
  class TaggingSource : public stream::Source {
   public:
    TaggingSource(stream::JsonlSource& inner, std::deque<std::size_t>& lines)
        : inner_(&inner), lines_(&lines) {}
    std::optional<service::Request> next() override {
      std::optional<service::Request> request = inner_->next();
      if (request) lines_->push_back(inner_->linesRead());
      return request;
    }

   private:
    stream::JsonlSource* inner_;
    std::deque<std::size_t>* lines_;
  };
  TaggingSource tagged(source, inputLines);
  stream::JsonlSink sink(lineWriter, &inputLines);
  stream::AsyncScheduler scheduler(config);

  // Periodic snapshot emitter: a background thread that wakes every
  // --stats-interval seconds and writes one JSONL snapshot line, plus one
  // final snapshot after the stream ends (so even a short run yields at
  // least one line). Snapshot lines share a guarded whole-line writer so
  // they can never interleave mid-line — but note they go to stderr (or the
  // --stats-output file), never into the stdout outcome stream.
  stream::JsonlLineWriter statsWriter(*statsStream);
  const auto startedAt = std::chrono::steady_clock::now();
  std::size_t statsSequence = 0;
  const auto emitSnapshot = [&] {
    const double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - startedAt).count();
    statsWriter.writeLine(renderServeSnapshot(scheduler, statsSequence++, uptime));
  };
  std::mutex emitterMutex;
  std::condition_variable emitterCv;
  bool emitterDone = false;
  std::thread emitter;
  if (statsInterval > 0) {
    emitter = std::thread([&] {
      std::unique_lock<std::mutex> lock(emitterMutex);
      for (;;) {
        if (emitterCv.wait_for(lock, std::chrono::duration<double>(statsInterval),
                               [&] { return emitterDone; })) {
          return;
        }
        lock.unlock();
        emitSnapshot();
        lock.lock();
      }
    });
  }

  stream::EngineStats stats;
  try {
    stats = stream::runStream(tagged, sink, scheduler);
  } catch (...) {
    if (emitter.joinable()) {
      {
        std::lock_guard<std::mutex> lock(emitterMutex);
        emitterDone = true;
      }
      emitterCv.notify_all();
      emitter.join();
    }
    throw;
  }
  if (emitter.joinable()) {
    {
      std::lock_guard<std::mutex> lock(emitterMutex);
      emitterDone = true;
    }
    emitterCv.notify_all();
    emitter.join();
  }
  if (statsInterval > 0) emitSnapshot();  // final (possibly only) snapshot

  const stream::StreamStats s = scheduler.stats();
  const service::CacheStats cache = scheduler.cacheStats();
  const service::CacheStats sub = scheduler.subCacheStats();
  err << "serve: " << stats.requests << " request(s) — " << s.solved << " solved, "
      << s.cacheHits << " cache hit(s), " << s.coalesced << " coalesced, "
      << "sub_hits=" << sub.hits << ", evictions=" << cache.evictions << "+" << sub.evictions
      << ", " << stats.failed << " failed, " << parseErrors
      << " parse error(s) in " << stats.wallSeconds << " s\n";
  return (stats.failed == 0 && parseErrors == 0) ? 0 : 1;
}

}  // namespace pipesched::cli::detail
