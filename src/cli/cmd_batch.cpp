// `batch` — the portfolio scheduling service on the command line: solve many
// instances (files, directories, JSONL request files, named scenarios,
// generated suites) through the shared thread pool + result cache.
//
// Two execution shapes behind one set of sources:
//   * default — solveBatch: requests drained from the lazy Source into one
//     batch; table/JSON report with deterministic per-request fronts;
//   * --stream — the async engine: requests stay lazy end to end, outcomes
//     emitted incrementally as JSONL (memory bounded by queue + workers, not
//     by batch size).
#include <algorithm>
#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>

#include "cli_internal.hpp"
#include "pipesched/exp/report.hpp"
#include "pipesched/io/json.hpp"
#include "pipesched/obs/metrics.hpp"
#include "pipesched/service/service.hpp"
#include "pipesched/stream/engine.hpp"

namespace pipesched::cli::detail {

namespace {

/// The single loader both execution shapes share: every request origin the
/// command supports, chained into one lazy Source. Callable once per pass
/// (--repeat re-reads files so later passes exercise the cache, not a copy).
std::unique_ptr<stream::Source> buildSource(const ArgList& args) {
  const service::SweepSpec sweep{args.getSize("points", 24), args.getReal("range", 3)};
  const core::CommModel model =
      args.has("overlap") ? core::CommModel::kOverlapped : core::CommModel::kSequential;

  std::vector<std::unique_ptr<stream::Source>> parts;
  if (!args.positionals().empty()) {
    parts.push_back(std::make_unique<stream::FileListSource>(
        stream::expandInstancePaths(args.positionals()), sweep, model));
  }
  if (const auto jsonl = args.get("requests")) {
    auto file = std::make_unique<std::ifstream>(*jsonl);
    if (!*file) throw std::runtime_error("cannot open request file: " + *jsonl);
    parts.push_back(std::make_unique<stream::JsonlSource>(
        std::move(file), stream::JsonlDefaults{sweep, model}));
  }
  if (args.has("scenarios")) {
    parts.push_back(std::make_unique<stream::ScenarioSource>(sweep, model));
  }
  if (const auto kindSpec = args.get("kind")) {
    stream::GeneratorSource::Spec spec;
    spec.kind = parseKind(*kindSpec);
    spec.count = args.getSize("count", 10);
    spec.stages = args.getSize("stages", 10);
    spec.processors = args.getSize("processors", 10);
    spec.seed = args.getU64("seed", 20070628);
    spec.sweep = sweep;
    spec.model = model;
    parts.push_back(std::make_unique<stream::GeneratorSource>(spec));
  } else if (args.has("count")) {
    throw UsageError("--count needs --kind E1..E4");
  }

  if (parts.empty()) {
    throw UsageError(
        "nothing to solve: give instance files/directories, --requests FILE.jsonl, "
        "--scenarios, or --kind E1..E4 [--count N]");
  }
  if (parts.size() == 1) return std::move(parts.front());
  return std::make_unique<stream::ChainSource>(std::move(parts));
}

std::vector<service::Request> drainSource(stream::Source& source) {
  std::vector<service::Request> requests;
  while (std::optional<service::Request> request = source.next()) {
    requests.push_back(std::move(*request));
  }
  return requests;
}

void printText(std::ostream& out, const std::vector<service::Request>& requests,
               const service::BatchResult& batch, const service::CacheStats& cache,
               const service::CacheStats& sub) {
  exp::TextTable table;
  table.setHeader({"request", "fingerprint", "front", "min period", "min latency", "source"});
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const service::RequestOutcome& outcome = batch.outcomes[i];
    const std::string fp = outcome.fingerprint.hex().substr(0, 12);
    if (!outcome.ok) {
      table.addRow({requests[i].name, fp, "error", "-", "-", outcome.error});
      continue;
    }
    const auto& front = outcome.result.front;
    const std::string source = outcome.fromCache ? "cache"
                               : outcome.deduped ? "dedup"
                                                 : (outcome.result.exactUsed ? "solved+exact"
                                                                             : "solved");
    table.addRow({requests[i].name, fp, std::to_string(front.size()),
                  front.empty() ? "-" : exp::formatReal(front.front().period, 3),
                  front.empty() ? "-" : exp::formatReal(front.back().latency, 3), source});
  }
  table.print(out);
  const service::BatchStats& s = batch.stats;
  out << "\n" << s.requests << " request(s): " << s.solved << " solved, " << s.cacheHits
      << " cache hit(s), " << s.deduped << " deduped, " << s.failed << " failed in "
      << exp::formatReal(s.wallSeconds, 3) << " s (" << exp::formatReal(s.requestsPerSecond, 1)
      << " req/s)\n";
  out << "cache: " << cache.entries << " entr" << (cache.entries == 1 ? "y" : "ies") << ", "
      << cache.hits << " hit(s), " << cache.misses << " miss(es), " << cache.evictions
      << " eviction(s)\n";
  out << "sub-results: " << s.subHits << " hit(s) (" << s.subUnitsReused
      << " whole unit(s) reused), " << sub.entries << " cached unit(s), " << sub.evictions
      << " eviction(s)\n";
  if (!s.members.empty()) {
    out << "\nportfolio members (fresh solves):\n";
    exp::TextTable members;
    members.setHeader(
        {"member", "runs", "points", "novel", "merged", "skipped", "dropped", "reused",
         "seeded"});
    for (const service::MemberBatchStats& m : s.members) {
      members.addRow({m.solver, std::to_string(m.runs), std::to_string(m.points),
                      std::to_string(m.novel), std::to_string(m.merged),
                      std::to_string(m.skipped), std::to_string(m.dropped),
                      std::to_string(m.reused), std::to_string(m.seeded)});
    }
    members.print(out);
  }
}

void printJson(std::ostream& out, const std::vector<service::Request>& requests,
               const service::BatchResult& batch, const service::CacheStats& cache,
               const service::CacheStats& sub) {
  io::JsonWriter w(out, /*pretty=*/true);
  w.beginObject();
  w.key("requests").beginArray();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    w.beginObject();
    // Same field list as the JSONL stream lines — one emitter, no drift.
    stream::writeOutcomeFields(w, requests[i].name, batch.outcomes[i]);
    w.endObject();
  }
  w.endArray();
  w.key("stats").beginObject();
  w.kv("requests", batch.stats.requests);
  w.kv("solved", batch.stats.solved);
  w.kv("cache_hits", batch.stats.cacheHits);
  w.kv("deduped", batch.stats.deduped);
  w.kv("failed", batch.stats.failed);
  w.kv("wall_seconds", batch.stats.wallSeconds);
  w.kv("requests_per_second", batch.stats.requestsPerSecond);
  w.kv("sub_hits", static_cast<std::size_t>(batch.stats.subHits));
  w.kv("sub_units_reused", static_cast<std::size_t>(batch.stats.subUnitsReused));
  w.key("members").beginArray();
  for (const service::MemberBatchStats& m : batch.stats.members) {
    w.beginObject();
    w.kv("member", m.solver);
    w.kv("runs", static_cast<std::size_t>(m.runs));
    w.kv("points", static_cast<std::size_t>(m.points));
    w.kv("novel", static_cast<std::size_t>(m.novel));
    w.kv("merged", static_cast<std::size_t>(m.merged));
    w.kv("skipped", static_cast<std::size_t>(m.skipped));
    w.kv("dropped", static_cast<std::size_t>(m.dropped));
    w.kv("reused", static_cast<std::size_t>(m.reused));
    w.kv("seeded", static_cast<std::size_t>(m.seeded));
    w.endObject();
  }
  w.endArray();
  w.endObject();
  w.key("cache").beginObject();
  w.kv("entries", cache.entries);
  w.kv("hits", cache.hits);
  w.kv("misses", cache.misses);
  w.kv("evictions", cache.evictions);
  w.kv("hit_ratio", cache.hitRatio());
  w.endObject();
  w.key("sub_cache").beginObject();
  w.kv("entries", sub.entries);
  w.kv("hits", sub.hits);
  w.kv("misses", sub.misses);
  w.kv("evictions", sub.evictions);
  w.endObject();
  w.endObject();
  out << "\n";
}

/// --stream: pump every pass through the async engine, emitting outcome
/// JSONL incrementally, then one trailing {"stats": ...} line.
int runStreamMode(const ArgList& args, std::ostream& out, std::size_t threads,
                  std::size_t repeat, const service::ServiceConfig& serviceConfig) {
  stream::StreamConfig config;
  config.service = serviceConfig;
  config.service.threads = 0;  // workers are the cross-request parallelism
  config.workers = threads;
  config.queueCapacity = args.getSize("queue-capacity", 64);

  stream::AsyncScheduler scheduler(config);
  stream::JsonlSink sink(out);
  // runStream numbers each pass from 0; offset so the emitted "index" stays
  // strictly increasing across --repeat passes (the sink contract consumers
  // correlate by).
  struct OffsetSink : stream::Sink {
    stream::Sink* inner;
    std::size_t offset = 0;
    void emit(std::size_t index, const service::Request& request,
              const service::RequestOutcome& outcome) override {
      inner->emit(offset + index, request, outcome);
    }
  };
  OffsetSink offsetSink;
  offsetSink.inner = &sink;
  std::size_t requests = 0;
  std::size_t failed = 0;
  double wallSeconds = 0;
  std::unique_ptr<stream::Source> source = buildSource(args);
  args.assertConsumed();  // every option has been read by now
  for (std::size_t pass = 0; pass < repeat; ++pass) {
    if (pass > 0) source = buildSource(args);  // re-read files: cache, not copies
    offsetSink.offset = requests;
    const stream::EngineStats stats = stream::runStream(*source, offsetSink, scheduler);
    requests += stats.requests;
    failed += stats.failed;
    wallSeconds += stats.wallSeconds;
  }

  const stream::StreamStats s = scheduler.stats();
  const service::CacheStats cache = scheduler.cacheStats();
  const service::CacheStats sub = scheduler.subCacheStats();
  io::JsonWriter w(out, /*pretty=*/false);
  w.beginObject();
  w.key("stats").beginObject();
  w.kv("requests", requests);
  w.kv("solved", s.solved);
  w.kv("cache_hits", s.cacheHits);
  w.kv("coalesced", s.coalesced);
  w.kv("sub_hits", static_cast<std::size_t>(sub.hits));
  w.kv("failed", s.failed);
  w.kv("wall_seconds", wallSeconds);
  w.kv("requests_per_second", wallSeconds > 0 ? static_cast<double>(requests) / wallSeconds : 0.0);
  w.kv("backpressure_waits", static_cast<std::size_t>(s.queue.pushWaits));
  w.kv("queue_high_water", s.queue.highWater);
  w.kv("max_in_flight", s.maxInFlight);
  w.endObject();
  w.key("cache").beginObject();
  w.kv("entries", cache.entries);
  w.kv("hits", static_cast<std::size_t>(cache.hits));
  w.kv("misses", static_cast<std::size_t>(cache.misses));
  w.kv("evictions", static_cast<std::size_t>(cache.evictions));
  // sub_hits lives in the stats object above; only residency belongs here.
  w.kv("sub_entries", sub.entries);
  w.kv("sub_evictions", static_cast<std::size_t>(sub.evictions));
  w.endObject();
  w.endObject();
  out << "\n";
  return failed == 0 ? 0 : 1;
}

}  // namespace

int cmdBatch(const ArgList& args, std::ostream& out, std::ostream& /*err*/) {
  const std::size_t repeat = std::max<std::size_t>(1, args.getSize("repeat", 1));
  // --trace attaches per-request stage breakdowns to the JSON/JSONL output
  // and implies --metrics (registry recording). Raise-only: an externally
  // enabled flag (in-process caller) is never lowered by "off".
  const bool traceOn = parseOnOff(args, "trace", false);
  const bool metricsOn = parseOnOff(args, "metrics", traceOn);
  obs::ScopedTracingEnabled tracingScope(traceOn || obs::tracingEnabled());
  obs::ScopedMetricsEnabled metricsScope(metricsOn || obs::metricsEnabled());
  const service::ServiceConfig config = serviceConfigFromArgs(args);
  const bool json = args.has("json");  // stream mode is JSONL regardless

  if (args.has("stream")) {
    return runStreamMode(args, out, config.threads, repeat, config);
  }
  std::vector<service::Request> requests = drainSource(*buildSource(args));
  args.assertConsumed();

  // --repeat submits the same batch N times through one service: the first
  // pass solves, later passes are served by the result cache. The table
  // shows the final pass; the summary aggregates every pass.
  service::SchedulingService svc(config);
  service::BatchResult batch = svc.solveBatch(requests);
  service::BatchStats total = batch.stats;
  for (std::size_t r = 1; r < repeat; ++r) {
    batch = svc.solveBatch(requests);
    total.requests += batch.stats.requests;
    total.solved += batch.stats.solved;
    total.failed += batch.stats.failed;
    total.cacheHits += batch.stats.cacheHits;
    total.deduped += batch.stats.deduped;
    total.subHits += batch.stats.subHits;
    total.subUnitsReused += batch.stats.subUnitsReused;
    total.wallSeconds += batch.stats.wallSeconds;
    for (const service::MemberBatchStats& m : batch.stats.members) {
      auto it = std::find_if(total.members.begin(), total.members.end(),
                             [&](const service::MemberBatchStats& t) {
                               return t.solver == m.solver;
                             });
      if (it == total.members.end()) {
        total.members.push_back(m);
      } else {
        it->merge(m);
      }
    }
  }
  total.requestsPerSecond =
      total.wallSeconds > 0 ? static_cast<double>(total.requests) / total.wallSeconds : 0;
  const std::size_t failedFinalPass = batch.stats.failed;
  batch.stats = total;
  const service::CacheStats cache = svc.cacheStats();
  const service::CacheStats sub = svc.subCacheStats();

  // Outcomes carry their fingerprints — no per-request display hashing.
  if (json) {
    printJson(out, requests, batch, cache, sub);
  } else {
    printText(out, requests, batch, cache, sub);
  }
  return failedFinalPass == 0 ? 0 : 1;
}

}  // namespace pipesched::cli::detail
