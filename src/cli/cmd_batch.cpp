// `batch` — the portfolio scheduling service on the command line: solve many
// instances (files, named scenarios, generated suites) through the shared
// thread pool + result cache, with deterministic per-request fronts.
#include <algorithm>
#include <ostream>
#include <sstream>

#include "cli_internal.hpp"
#include "pipesched/exp/report.hpp"
#include "pipesched/io/json.hpp"
#include "pipesched/service/service.hpp"
#include "pipesched/workload/scenarios.hpp"

namespace pipesched::cli::detail {

namespace {

std::vector<service::Request> collectRequests(const ArgList& args) {
  std::vector<service::Request> requests;
  const service::SweepSpec sweep{args.getSize("points", 24), args.getReal("range", 3)};
  const core::CommModel model =
      args.has("overlap") ? core::CommModel::kOverlapped : core::CommModel::kSequential;

  for (const std::string& path : args.positionals()) {
    const io::Instance instance = io::readInstanceFromFile(path);
    service::Request request{instance.pipeline, instance.platform, model, sweep,
                             instance.name.empty() ? path : instance.name};
    requests.push_back(std::move(request));
  }

  if (args.has("scenarios")) {
    const core::Platform platform = workload::labCluster();
    for (workload::Scenario& scenario : workload::allScenarios()) {
      requests.push_back(service::Request{std::move(scenario.pipeline), platform, model,
                                          sweep, scenario.name});
    }
  }

  if (const auto kindSpec = args.get("kind")) {
    const workload::ExperimentKind kind = parseKind(*kindSpec);
    const std::size_t count = args.getSize("count", 10);
    const std::size_t stages = args.getSize("stages", 10);
    const std::size_t processors = args.getSize("processors", 10);
    workload::Rng rng(args.getU64("seed", 20070628));
    for (std::size_t i = 0; i < count; ++i) {
      workload::InstancePair pair = workload::randomInstance(kind, stages, processors, rng);
      std::ostringstream name;
      name << workload::experimentName(kind) << "-n" << stages << "p" << processors << "-"
           << i;
      requests.push_back(service::Request{std::move(pair.pipeline), std::move(pair.platform),
                                          model, sweep, name.str()});
    }
  } else if (args.has("count")) {
    throw UsageError("--count needs --kind E1..E4");
  }

  if (requests.empty()) {
    throw UsageError(
        "nothing to solve: give instance files, --scenarios, or --kind E1..E4 [--count N]");
  }
  return requests;
}

void printText(std::ostream& out, const std::vector<service::Request>& requests,
               const std::vector<std::string>& fingerprints,
               const service::BatchResult& batch, const service::CacheStats& cache) {
  exp::TextTable table;
  table.setHeader({"request", "fingerprint", "front", "min period", "min latency", "source"});
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const service::RequestOutcome& outcome = batch.outcomes[i];
    const std::string fp = fingerprints[i].substr(0, 12);
    if (!outcome.ok) {
      table.addRow({requests[i].name, fp, "error", "-", "-", outcome.error});
      continue;
    }
    const auto& front = outcome.result.front;
    const std::string source = outcome.fromCache ? "cache"
                               : outcome.deduped ? "dedup"
                                                 : (outcome.result.exactUsed ? "solved+exact"
                                                                             : "solved");
    table.addRow({requests[i].name, fp, std::to_string(front.size()),
                  front.empty() ? "-" : exp::formatReal(front.front().period, 3),
                  front.empty() ? "-" : exp::formatReal(front.back().latency, 3), source});
  }
  table.print(out);
  const service::BatchStats& s = batch.stats;
  out << "\n" << s.requests << " request(s): " << s.solved << " solved, " << s.cacheHits
      << " cache hit(s), " << s.deduped << " deduped, " << s.failed << " failed in "
      << exp::formatReal(s.wallSeconds, 3) << " s (" << exp::formatReal(s.requestsPerSecond, 1)
      << " req/s)\n";
  out << "cache: " << cache.entries << " entr" << (cache.entries == 1 ? "y" : "ies") << ", "
      << cache.hits << " hit(s), " << cache.misses << " miss(es), " << cache.evictions
      << " eviction(s)\n";
}

void printJson(std::ostream& out, const std::vector<service::Request>& requests,
               const std::vector<std::string>& fingerprints,
               const service::BatchResult& batch, const service::CacheStats& cache) {
  io::JsonWriter w(out, /*pretty=*/true);
  w.beginObject();
  w.key("requests").beginArray();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const service::RequestOutcome& outcome = batch.outcomes[i];
    w.beginObject();
    w.kv("name", requests[i].name);
    w.kv("fingerprint", fingerprints[i]);
    w.kv("ok", outcome.ok);
    if (!outcome.ok) {
      w.kv("error", outcome.error);
    } else {
      w.kv("from_cache", outcome.fromCache);
      w.kv("deduped", outcome.deduped);
      w.kv("exact_used", outcome.result.exactUsed);
      w.kv("budget_exhausted", outcome.result.budgetExhausted);
      w.key("front").beginArray();
      for (const core::ParetoPoint& p : outcome.result.front) {
        w.beginObject();
        w.kv("period", p.period);
        w.kv("latency", p.latency);
        if (p.mapping) w.kv("intervals", p.mapping->intervalCount());
        w.endObject();
      }
      w.endArray();
      w.key("solvers").beginArray();
      for (const service::SolverContribution& c : outcome.result.solvers) {
        w.beginObject();
        w.kv("solver", c.solver);
        w.kv("points", c.points);
        w.kv("completed", c.completed);
        w.endObject();
      }
      w.endArray();
    }
    w.endObject();
  }
  w.endArray();
  w.key("stats").beginObject();
  w.kv("requests", batch.stats.requests);
  w.kv("solved", batch.stats.solved);
  w.kv("cache_hits", batch.stats.cacheHits);
  w.kv("deduped", batch.stats.deduped);
  w.kv("failed", batch.stats.failed);
  w.kv("wall_seconds", batch.stats.wallSeconds);
  w.kv("requests_per_second", batch.stats.requestsPerSecond);
  w.endObject();
  w.key("cache").beginObject();
  w.kv("entries", cache.entries);
  w.kv("hits", cache.hits);
  w.kv("misses", cache.misses);
  w.kv("evictions", cache.evictions);
  w.kv("hit_ratio", cache.hitRatio());
  w.endObject();
  w.endObject();
  out << "\n";
}

}  // namespace

int cmdBatch(const ArgList& args, std::ostream& out, std::ostream& /*err*/) {
  std::vector<service::Request> requests = collectRequests(args);
  const std::size_t repeat = std::max<std::size_t>(1, args.getSize("repeat", 1));

  service::ServiceConfig config;
  config.threads = args.getSize("threads", service::ThreadPool::defaultThreadCount());
  if (args.has("serial")) config.threads = 0;
  config.cacheCapacity = args.has("no-cache") ? 0 : args.getSize("cache-capacity", 1024);
  config.portfolio.useExact = !args.has("no-exact");
  config.portfolio.budget.maxRunsPerSolver = args.getU64("budget", UINT64_MAX);
  config.portfolio.budget.timeBudgetMs = args.getReal("time-budget", 0);
  const bool json = args.has("json");
  args.assertConsumed();

  // --repeat submits the same batch N times through one service: the first
  // pass solves, later passes are served by the result cache. The table
  // shows the final pass; the summary aggregates every pass.
  service::SchedulingService svc(config);
  service::BatchResult batch = svc.solveBatch(requests);
  service::BatchStats total = batch.stats;
  for (std::size_t r = 1; r < repeat; ++r) {
    batch = svc.solveBatch(requests);
    total.requests += batch.stats.requests;
    total.solved += batch.stats.solved;
    total.failed += batch.stats.failed;
    total.cacheHits += batch.stats.cacheHits;
    total.deduped += batch.stats.deduped;
    total.wallSeconds += batch.stats.wallSeconds;
  }
  total.requestsPerSecond =
      total.wallSeconds > 0 ? static_cast<double>(total.requests) / total.wallSeconds : 0;
  const std::size_t failedFinalPass = batch.stats.failed;
  batch.stats = total;
  const service::CacheStats cache = svc.cacheStats();

  // Hash each request once for display instead of once per printed field.
  std::vector<std::string> fingerprints;
  fingerprints.reserve(requests.size());
  for (const service::Request& request : requests) {
    fingerprints.push_back(service::fingerprint(request).hex());
  }

  if (json) {
    printJson(out, requests, fingerprints, batch, cache);
  } else {
    printText(out, requests, fingerprints, batch, cache);
  }
  return failedFinalPass == 0 ? 0 : 1;
}

}  // namespace pipesched::cli::detail
