#include "des_runner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pipesched::sim::detail {

namespace {

constexpr Time kUnset = std::numeric_limits<Time>::quiet_NaN();

[[nodiscard]] bool isSet(Time t) { return !std::isnan(t); }

class Runner {
 public:
  Runner(const DurationTable& durations, const SimConfig& config)
      : config_(config), durations_(durations), m_(durations.intervals),
        k_(durations.datasets) {
    if (k_ == 0) throw ModelError("runPipelineDes: datasetCount must be >= 1");
    senderReady_.assign((m_ + 1) * k_, kUnset);
    receiverReady_.assign((m_ + 1) * k_, kUnset);
    orderReady_.assign((m_ + 1) * k_, kUnset);
    started_.assign((m_ + 1) * k_, false);

    report_.releaseTimes.resize(k_);
    report_.completionTimes.assign(k_, kUnset);
    for (std::size_t k = 0; k < k_; ++k) {
      report_.releaseTimes[k] = config.releaseInterval * static_cast<Time>(k);
      senderReady(0, k) = report_.releaseTimes[k];
      receiverReady(m_, k) = Time(0);  // the sink is always ready
    }
    for (std::size_t t = 0; t <= m_; ++t) {
      // Replica r of interval t has no previous data set for its first
      // strideOf(t) stream positions.
      const std::size_t stride = t < m_ ? durations_.strideOf(t) : 1;
      for (std::size_t k = 0; k < std::min(stride, k_); ++k) receiverReady(t, k) = Time(0);
      if (durations_.enforceStreamOrder) {
        orderReady(t, 0) = Time(0);  // the stream head has no predecessor
      } else {
        for (std::size_t k = 0; k < k_; ++k) orderReady(t, k) = Time(0);
      }
    }
  }

  SimReport run() {
    for (std::size_t t = 0; t <= m_; ++t) {
      for (std::size_t k = 0; k < k_; ++k) tryStartTransfer(t, k);
    }
    engine_.run();
    finalizeReport();
    return std::move(report_);
  }

 private:
  Time& senderReady(std::size_t t, std::size_t k) { return senderReady_[t * k_ + k]; }
  Time& receiverReady(std::size_t t, std::size_t k) { return receiverReady_[t * k_ + k]; }
  Time& orderReady(std::size_t t, std::size_t k) { return orderReady_[t * k_ + k]; }

  void tryStartTransfer(std::size_t t, std::size_t k) {
    if (started_[t * k_ + k]) return;
    const Time sr = senderReady(t, k);
    const Time rr = receiverReady(t, k);
    const Time pr = orderReady(t, k);
    if (!isSet(sr) || !isSet(rr) || !isSet(pr)) return;
    started_[t * k_ + k] = true;
    const Time start = std::max({sr, rr, pr});
    const Time end = start + durations_.transferOf(t, k);
    trace(TraceEvent::Kind::kTransferStart, start, t, k);
    engine_.schedule(end, [this, t, k] { onTransferEnd(t, k); });
  }

  void onTransferEnd(std::size_t t, std::size_t k) {
    const Time now = engine_.now();
    trace(TraceEvent::Kind::kTransferEnd, now, t, k);
    if (t < m_) {
      // The receiving interval computes, then becomes ready to send.
      trace(TraceEvent::Kind::kComputeStart, now, t, k);
      engine_.schedule(now + durations_.computeOf(t, k), [this, t, k] { onComputeEnd(t, k); });
    } else {
      report_.completionTimes[k] = now;
    }
    // In-order stream dealing: the next data set may now cross this boundary.
    if (durations_.enforceStreamOrder && k + 1 < k_) {
      orderReady(t, k + 1) = now;
      tryStartTransfer(t, k + 1);
    }
    if (t >= 1) {
      // The sending replica of interval t-1 is free again: it may receive its
      // next data set (stride positions later in the stream).
      const std::size_t next = k + durations_.strideOf(t - 1);
      if (next < k_) {
        receiverReady(t - 1, next) = now;
        tryStartTransfer(t - 1, next);
      }
    }
  }

  void onComputeEnd(std::size_t j, std::size_t k) {
    const Time now = engine_.now();
    trace(TraceEvent::Kind::kComputeEnd, now, j, k);
    senderReady(j + 1, k) = now;
    tryStartTransfer(j + 1, k);
  }

  void trace(TraceEvent::Kind kind, Time time, std::size_t idx, std::size_t dataset) {
    if (config_.recordTrace) report_.trace.push_back(TraceEvent{kind, time, idx, dataset});
  }

  void finalizeReport() {
    report_.eventCount = engine_.eventsProcessed();
    report_.latencies.resize(k_);
    for (std::size_t k = 0; k < k_; ++k) {
      if (!isSet(report_.completionTimes[k])) {
        throw ModelError("runPipelineDes: data set never completed (internal deadlock)");
      }
      report_.latencies[k] = report_.completionTimes[k] - report_.releaseTimes[k];
      report_.maxLatency = std::max(report_.maxLatency, report_.latencies[k]);
    }
    // Unordered dealing can complete data sets out of index order; rate
    // estimates therefore use the sorted completion sequence (identical to
    // the index sequence for ordered streams).
    std::vector<Time> sorted = report_.completionTimes;
    std::sort(sorted.begin(), sorted.end());
    report_.makespan = sorted.back();
    const std::size_t w = std::min(config_.warmup, k_ - 1);
    if (k_ - 1 > w) {
      report_.steadyStatePeriod =
          (sorted[k_ - 1] - sorted[w]) / static_cast<Time>(k_ - 1 - w);
    } else if (k_ >= 2) {
      report_.steadyStatePeriod = (sorted[k_ - 1] - sorted[0]) / static_cast<Time>(k_ - 1);
    }
  }

  SimConfig config_;
  const DurationTable& durations_;
  std::size_t m_;
  std::size_t k_;
  Engine engine_;
  std::vector<Time> senderReady_;
  std::vector<Time> receiverReady_;
  std::vector<Time> orderReady_;
  std::vector<bool> started_;
  SimReport report_;
};

}  // namespace

DurationTable nominalDurations(const core::Evaluator& eval,
                               const core::IntervalMapping& mapping, std::size_t datasets) {
  const std::size_t m = mapping.intervalCount();
  const auto& pipe = eval.pipeline();
  const auto& plat = eval.platform();

  DurationTable table;
  table.intervals = m;
  table.datasets = datasets;
  table.transfer.resize((m + 1) * datasets);
  table.compute.resize(m * datasets);
  for (std::size_t j = 0; j < m; ++j) {
    const Time c = eval.computeTime(mapping.interval(j), mapping.processor(j));
    for (std::size_t k = 0; k < datasets; ++k) table.compute[j * datasets + k] = c;
  }
  for (std::size_t t = 0; t <= m; ++t) {
    Real size = 0;
    Real bw = 1;
    if (t == 0) {
      size = pipe.comm(mapping.interval(0).first);
      bw = plat.inputBandwidth(mapping.processor(0));
    } else if (t == m) {
      size = pipe.comm(pipe.stageCount());
      bw = plat.outputBandwidth(mapping.processor(m - 1));
    } else {
      size = pipe.comm(mapping.interval(t).first);
      bw = plat.bandwidth(mapping.processor(t - 1), mapping.processor(t));
    }
    const Time d = size > Real(0) ? size / bw : Time(0);
    for (std::size_t k = 0; k < datasets; ++k) table.transfer[t * datasets + k] = d;
  }
  return table;
}

SimReport runPipelineDes(const DurationTable& durations, const SimConfig& config) {
  return Runner(durations, config).run();
}

}  // namespace pipesched::sim::detail
