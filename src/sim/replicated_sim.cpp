#include "pipesched/sim/replicated_sim.hpp"

#include "des_runner.hpp"

namespace pipesched::sim {

SimReport simulateReplicated(const core::Evaluator& eval,
                             const core::ReplicatedMapping& mapping, const SimConfig& config,
                             DealDiscipline discipline) {
  mapping.validate(eval.pipeline().stageCount(), eval.platform().processorCount());
  if (!eval.platform().isCommHomogeneous()) {
    throw ModelError("simulateReplicated: requires a communication-homogeneous platform");
  }
  if (config.datasetCount == 0) {
    throw ModelError("simulateReplicated: datasetCount must be >= 1");
  }

  const std::size_t m = mapping.intervalCount();
  const std::size_t datasets = config.datasetCount;
  const auto& pipe = eval.pipeline();
  const Real b = eval.platform().bandwidth();

  detail::DurationTable table;
  table.intervals = m;
  table.datasets = datasets;
  table.transfer.resize((m + 1) * datasets);
  table.compute.resize(m * datasets);
  table.strides.resize(m);
  table.enforceStreamOrder = discipline == DealDiscipline::kStreamOrdered;

  for (std::size_t j = 0; j < m; ++j) {
    const core::ReplicatedAssignment& a = mapping.assignment(j);
    table.strides[j] = a.processors.size();
    const Real work = pipe.workSum(a.interval.first, a.interval.last);
    for (std::size_t k = 0; k < datasets; ++k) {
      const std::size_t replica = k % a.processors.size();
      table.compute[j * datasets + k] = work / eval.platform().speed(a.processors[replica]);
    }
  }
  for (std::size_t t = 0; t <= m; ++t) {
    const Real size =
        t < m ? pipe.comm(mapping.assignment(t).interval.first) : pipe.comm(pipe.stageCount());
    const Time duration = size > Real(0) ? size / b : Time(0);
    for (std::size_t k = 0; k < datasets; ++k) table.transfer[t * datasets + k] = duration;
  }
  return detail::runPipelineDes(table, config);
}

}  // namespace pipesched::sim
