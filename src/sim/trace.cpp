#include "pipesched/sim/trace.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <vector>

#include "pipesched/io/real_format.hpp"

namespace pipesched::sim {

namespace {

const char* kindName(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kTransferStart: return "transfer_start";
    case TraceEvent::Kind::kTransferEnd: return "transfer_end";
    case TraceEvent::Kind::kComputeStart: return "compute_start";
    case TraceEvent::Kind::kComputeEnd: return "compute_end";
  }
  return "?";
}

void requireTrace(const SimReport& report) {
  if (report.trace.empty()) {
    throw ModelError("trace rendering: the report carries no trace "
                     "(run with SimConfig::recordTrace = true)");
  }
}

}  // namespace

void writeTraceCsv(std::ostream& out, const SimReport& report) {
  requireTrace(report);
  out << "kind,time,index,dataset\n";
  for (const TraceEvent& e : report.trace) {
    out << kindName(e.kind) << ',' << io::formatReal(e.time) << ',' << e.interval << ','
        << e.dataset << '\n';
  }
}

std::string renderGantt(const core::IntervalMapping& mapping, const SimReport& report,
                        const GanttOptions& options) {
  requireTrace(report);
  if (options.width < 10) throw ModelError("renderGantt: width must be >= 10");

  const std::size_t m = mapping.intervalCount();
  const std::size_t maxK =
      options.maxDatasets == 0 ? report.completionTimes.size() : options.maxDatasets;

  // Collect compute spans per interval, limited to the drawn data sets.
  struct Span {
    Time start = 0, end = 0;
    std::size_t dataset = 0;
  };
  std::vector<std::vector<Span>> spans(m);
  std::vector<Time> open(m, Time(-1));
  std::vector<std::size_t> openDataset(m, 0);
  Time horizon = 0;
  for (const TraceEvent& e : report.trace) {
    if (e.dataset >= maxK || e.interval >= m) continue;
    if (e.kind == TraceEvent::Kind::kComputeStart) {
      open[e.interval] = e.time;
      openDataset[e.interval] = e.dataset;
    } else if (e.kind == TraceEvent::Kind::kComputeEnd && open[e.interval] >= 0) {
      spans[e.interval].push_back(Span{open[e.interval], e.time, openDataset[e.interval]});
      horizon = std::max(horizon, e.time);
      open[e.interval] = Time(-1);
    }
  }
  if (horizon <= 0) {
    // Degenerate: all compute phases have zero length; use the makespan so
    // the axis is still drawable.
    horizon = std::max(report.makespan, Time(1));
  }

  const Real scale = static_cast<Real>(options.width) / horizon;
  std::ostringstream out;
  out << "time: 0 .. " << io::formatReal(horizon) << "  ('" << '.'
      << "' idle, digit = data set mod 10, compute phases only)\n";
  for (std::size_t j = 0; j < m; ++j) {
    std::string row(options.width, '.');
    for (const Span& s : spans[j]) {
      auto col = [&](Time t) {
        return std::min(options.width - 1,
                        static_cast<std::size_t>(std::max(Real(0), t * scale)));
      };
      const std::size_t a = col(s.start);
      const std::size_t b = std::max(col(s.end > s.start ? s.end : s.start), a);
      const char digit = static_cast<char>('0' + s.dataset % 10);
      for (std::size_t c = a; c <= b && c < options.width; ++c) row[c] = digit;
    }
    out << "P" << mapping.processor(j);
    for (std::size_t pad = std::to_string(mapping.processor(j)).size(); pad < 4; ++pad) {
      out << ' ';
    }
    out << '[' << row << "]\n";
  }
  return out.str();
}

}  // namespace pipesched::sim
