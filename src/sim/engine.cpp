#include "pipesched/sim/engine.hpp"

#include <limits>
#include <utility>

namespace pipesched::sim {

void Engine::schedule(Time at, Callback cb) {
  if (at < now_ - kTimeEps) {
    throw ModelError("sim::Engine: cannot schedule an event in the past");
  }
  queue_.push(Event{std::max(at, now_), nextSeq_++, std::move(cb)});
}

Time Engine::run() { return run(std::numeric_limits<std::uint64_t>::max()); }

Time Engine::run(std::uint64_t maxEvents) {
  std::uint64_t budget = maxEvents;
  while (!queue_.empty() && budget-- > 0) {
    // Move the event out before popping so the callback may schedule freely.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.at;
    ++processed_;
    event.cb();
  }
  return now_;
}

}  // namespace pipesched::sim
