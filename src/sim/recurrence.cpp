#include "pipesched/sim/recurrence.hpp"

namespace pipesched::sim {

std::vector<Time> recurrenceCompletionTimes(const core::Evaluator& eval,
                                            const core::IntervalMapping& mapping,
                                            const std::vector<Time>& releases) {
  mapping.validate(eval.pipeline().stageCount(), eval.platform().processorCount());
  if (releases.empty()) return {};
  const std::size_t m = mapping.intervalCount();
  const auto& pipe = eval.pipeline();
  const auto& plat = eval.platform();

  std::vector<Time> dur(m + 1);
  std::vector<Time> comp(m);
  for (std::size_t j = 0; j < m; ++j) {
    comp[j] = eval.computeTime(mapping.interval(j), mapping.processor(j));
  }
  for (std::size_t t = 0; t <= m; ++t) {
    Real size = 0;
    Real bw = 1;
    if (t == 0) {
      size = pipe.comm(mapping.interval(0).first);
      bw = plat.inputBandwidth(mapping.processor(0));
    } else if (t == m) {
      size = pipe.comm(pipe.stageCount());
      bw = plat.outputBandwidth(mapping.processor(m - 1));
    } else {
      size = pipe.comm(mapping.interval(t).first);
      bw = plat.bandwidth(mapping.processor(t - 1), mapping.processor(t));
    }
    dur[t] = size > Real(0) ? size / bw : Time(0);
  }

  std::vector<Time> prev(m + 1, Time(0));  // end(t, k-1)
  std::vector<Time> cur(m + 1, Time(0));
  std::vector<Time> completions(releases.size());
  for (std::size_t k = 0; k < releases.size(); ++k) {
    for (std::size_t t = 0; t <= m; ++t) {
      const Time senderReady = (t == 0) ? releases[k] : cur[t - 1] + comp[t - 1];
      const Time receiverReady = (t == m || k == 0) ? Time(0) : prev[t + 1];
      cur[t] = std::max(senderReady, receiverReady) + dur[t];
    }
    completions[k] = cur[m];
    std::swap(prev, cur);
  }
  return completions;
}

Time recurrenceSteadyPeriod(const core::Evaluator& eval, const core::IntervalMapping& mapping,
                            std::size_t datasets, std::size_t warmup) {
  if (datasets < 2) throw ModelError("recurrenceSteadyPeriod: needs >= 2 data sets");
  const std::vector<Time> releases(datasets, Time(0));
  const std::vector<Time> completions = recurrenceCompletionTimes(eval, mapping, releases);
  const std::size_t w = std::min(warmup, datasets - 2);
  return (completions[datasets - 1] - completions[w]) / static_cast<Time>(datasets - 1 - w);
}

}  // namespace pipesched::sim
