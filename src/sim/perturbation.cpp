#include "pipesched/sim/perturbation.hpp"

#include <algorithm>

#include "des_runner.hpp"
#include "pipesched/workload/rng.hpp"

namespace pipesched::sim {

namespace {

void validateJitter(const JitterModel& jitter) {
  if (jitter.computeAmplitude < 0 || jitter.computeAmplitude >= 1 ||
      jitter.transferAmplitude < 0 || jitter.transferAmplitude >= 1) {
    throw ModelError("JitterModel: amplitudes must lie in [0, 1)");
  }
  if (jitter.minFactor <= 0) throw ModelError("JitterModel: minFactor must be > 0");
}

/// Scales every entry of `values` by an independent factor 1 + a*u,
/// u ~ Uniform(-1, 1), truncated at minFactor.
void applyNoise(std::vector<Time>& values, Real amplitude, Real minFactor,
                workload::Rng& rng) {
  if (amplitude == 0) return;
  for (Time& v : values) {
    const Real u = rng.uniform(-1, 1);
    const Real factor = std::max(minFactor, Real(1) + amplitude * u);
    v *= factor;
  }
}

}  // namespace

SimReport simulatePipelineJittered(const core::Evaluator& eval,
                                   const core::IntervalMapping& mapping,
                                   const SimConfig& config, const JitterModel& jitter) {
  mapping.validate(eval.pipeline().stageCount(), eval.platform().processorCount());
  if (config.datasetCount == 0) {
    throw ModelError("simulatePipelineJittered: datasetCount must be >= 1");
  }
  validateJitter(jitter);

  detail::DurationTable durations =
      detail::nominalDurations(eval, mapping, config.datasetCount);
  workload::Rng rng(jitter.seed);
  applyNoise(durations.compute, jitter.computeAmplitude, jitter.minFactor, rng);
  applyNoise(durations.transfer, jitter.transferAmplitude, jitter.minFactor, rng);
  return detail::runPipelineDes(durations, config);
}

RobustnessReport measureRobustness(const core::Evaluator& eval,
                                   const core::IntervalMapping& mapping,
                                   const SimConfig& config, const JitterModel& jitter,
                                   std::size_t trials) {
  if (trials == 0) throw ModelError("measureRobustness: trials must be >= 1");
  validateJitter(jitter);

  const core::Metrics nominal = eval.evaluate(mapping);
  RobustnessReport report;
  report.nominalPeriod = nominal.period;
  report.nominalLatency = nominal.latency;
  report.trials = trials;

  for (std::size_t trial = 0; trial < trials; ++trial) {
    JitterModel perTrial = jitter;
    perTrial.seed = jitter.seed + trial;
    const SimReport run = simulatePipelineJittered(eval, mapping, config, perTrial);
    report.meanPeriod += run.steadyStatePeriod;
    report.worstPeriod = std::max(report.worstPeriod, run.steadyStatePeriod);
    report.meanMaxLatency += run.maxLatency;
    report.worstMaxLatency = std::max(report.worstMaxLatency, run.maxLatency);
  }
  report.meanPeriod /= static_cast<Real>(trials);
  report.meanMaxLatency /= static_cast<Real>(trials);
  return report;
}

}  // namespace pipesched::sim
