// Private shared core of the one-port rendezvous pipeline simulation. Both
// the nominal simulator (pipeline_sim.cpp) and the jittered one
// (perturbation.cpp) drive this runner; they differ only in the per-(phase,
// data set) duration tables they supply.
//
// Model recap: transfer t connects interval t-1 to interval t (t = 0 is the
// world input, t = m the world output). A transfer starts when its sender has
// finished computing data set k and its receiver has finished *sending* data
// set k-1 (one-port: a processor is in at most one communication at a time;
// its receive for k+1 cannot overlap its send of k). Compute of interval j
// for data set k starts when transfer j delivered it.
#pragma once

#include <vector>

#include "pipesched/sim/pipeline_sim.hpp"

namespace pipesched::sim::detail {

/// Per-(phase, data set) durations. transfer is (m+1) x k, compute is m x k,
/// both row-major with the data-set index contiguous.
///
/// `strides[j]` is the replica-set size of interval j (1 for plain
/// mappings): interval j serves data set k on replica k mod strides[j], so
/// after sending k it is next ready to *receive* data set k + strides[j] on
/// that replica. The runner additionally enforces in-order stream dealing
/// (transfer t for k starts only after transfer t for k-1 completed), which
/// is a no-op for all-singleton mappings but paces round-robin dealing the
/// way a deal skeleton does.
struct DurationTable {
  std::size_t intervals = 0;  ///< m
  std::size_t datasets = 0;   ///< k
  std::vector<Time> transfer;
  std::vector<Time> compute;
  std::vector<std::size_t> strides;  ///< size m; empty means all-1

  /// When true, transfer t for data set k may only start after transfer t
  /// for k-1 completed (stream-ordered dealing: a busy replica back-
  /// pressures the whole stream). When false, boundary transfers to
  /// distinct replicas may overlap (independent substreams — the
  /// assumption behind the replication cost model). No-op for plain
  /// (all-singleton) mappings, whose serial chains order transfers anyway.
  bool enforceStreamOrder = true;

  [[nodiscard]] Time transferOf(std::size_t t, std::size_t k) const {
    return transfer[t * datasets + k];
  }
  [[nodiscard]] Time computeOf(std::size_t j, std::size_t k) const {
    return compute[j * datasets + k];
  }
  [[nodiscard]] std::size_t strideOf(std::size_t j) const {
    return strides.empty() ? 1 : strides[j];
  }
};

/// Nominal (model-exact) durations for `mapping` on `eval`'s platform,
/// replicated across all data sets.
[[nodiscard]] DurationTable nominalDurations(const core::Evaluator& eval,
                                             const core::IntervalMapping& mapping,
                                             std::size_t datasets);

/// Runs the rendezvous simulation over the given durations.
[[nodiscard]] SimReport runPipelineDes(const DurationTable& durations, const SimConfig& config);

}  // namespace pipesched::sim::detail
