#include "pipesched/sim/pipeline_sim.hpp"

#include "des_runner.hpp"

namespace pipesched::sim {

SimReport simulatePipeline(const core::Evaluator& eval, const core::IntervalMapping& mapping,
                           const SimConfig& config) {
  mapping.validate(eval.pipeline().stageCount(), eval.platform().processorCount());
  if (config.datasetCount == 0) throw ModelError("simulatePipeline: datasetCount must be >= 1");
  const detail::DurationTable durations =
      detail::nominalDurations(eval, mapping, config.datasetCount);
  return detail::runPipelineDes(durations, config);
}

}  // namespace pipesched::sim
