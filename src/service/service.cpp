#include "pipesched/service/service.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "pipesched/fault/fault.hpp"
#include "pipesched/obs/metrics.hpp"
#include "pipesched/obs/trace.hpp"

namespace pipesched::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Folds one fresh solve's contributions into the batch's per-member rows
/// (first-seen order — deterministic because solves are folded in input
/// order and members race in fixed catalog order).
void accumulateMemberStats(std::vector<MemberBatchStats>& members,
                           const std::vector<SolverContribution>& solvers) {
  for (const SolverContribution& c : solvers) {
    auto it = std::find_if(members.begin(), members.end(),
                           [&](const MemberBatchStats& m) { return m.solver == c.solver; });
    if (it == members.end()) {
      members.push_back(MemberBatchStats{c.solver});
      it = std::prev(members.end());
    }
    it->add(c);
  }
}

/// Adds a fresh solve's stage timings and per-member walls to `trace`.
/// Cache hits never come through here: a hit repeats a prior solve's result,
/// not its work, so its trace carries only the lookup.
void addSolveStages(obs::RequestTrace& trace, const PortfolioResult& result) {
  trace.add(obs::Stage::kMemberSolve, result.memberRaceSeconds);
  trace.add(obs::Stage::kMerge, result.mergeSeconds);
  trace.members.reserve(result.solvers.size());
  for (const SolverContribution& c : result.solvers) {
    trace.members.emplace_back(c.solver, c.wallSeconds);
  }
}

/// Registry counters mirroring the solved/cache-hit/failed outcome buckets.
void countOutcome(const RequestOutcome& outcome) {
  if (!obs::metricsEnabled()) return;
  static obs::Counter& solved = obs::registry().counter(obs::names::kRequestsSolved);
  static obs::Counter& cacheHits = obs::registry().counter(obs::names::kRequestsCacheHit);
  static obs::Counter& failed = obs::registry().counter(obs::names::kRequestsFailed);
  if (!outcome.ok) {
    failed.add();
  } else if (outcome.fromCache) {
    cacheHits.add();
  } else {
    solved.add();
    if (outcome.result.degraded) {
      obs::registry().counter(obs::names::kDegradedResponses).add();
    }
  }
}

}  // namespace

SchedulingService::SchedulingService(ServiceConfig config)
    : config_(config),
      cache_(config.cacheCapacity, config.cacheShards),
      subCache_(config.shareSubResults ? config.subCacheCapacity : 0, config.subCacheShards),
      pool_(config.threads) {}

RequestOutcome SchedulingService::solveUncached(const Request& request, ThreadPool* pool) {
  RequestOutcome outcome;
  try {
    const core::Evaluator eval(request.pipeline, request.platform, request.model);
    // Cross-request work sharing: bind this solve to the sub-result cache
    // under the instance's sweep-independent identity. Safe under one fixed
    // portfolio config (this service's), whatever the pool interleaving —
    // memoized units are pure functions of their keys.
    std::optional<SubShare> share;
    if (subCache_.capacity() > 0) {
      share.emplace(&subCache_, instanceFingerprint(request));
    }
    outcome.result = runPortfolio(eval, request.sweep, config_.portfolio, pool,
                                  share ? &*share : nullptr, request.deadline);
    outcome.ok = true;
  } catch (const std::exception& e) {
    outcome.ok = false;
    outcome.error = e.what();
  } catch (...) {
    // A non-std exception from a solver must still land in the outcome slot:
    // letting it fly through a pool task's future would eventually surface as
    // an opaque rethrow (or std::terminate in a detached context), sinking
    // the whole batch for one bad request.
    outcome.ok = false;
    outcome.error = "unknown exception while solving";
  }
  return outcome;
}

RequestOutcome SchedulingService::solve(const Request& request) {
  if (!obs::tracingEnabled()) {
    return solve(request, requestIdentity(request), nullptr);
  }
  obs::RequestTrace trace;
  trace.totalSeconds = request.parseSeconds;
  if (request.parseSeconds > 0) trace.add(obs::Stage::kParse, request.parseSeconds);
  obs::TraceSpan fingerprintSpan(obs::Stage::kFingerprint, &trace);
  const RequestIdentity identity = requestIdentity(request);
  trace.totalSeconds += fingerprintSpan.stop();
  return solve(request, identity, &trace);
}

RequestOutcome SchedulingService::solve(const Request& request,
                                        const RequestIdentity& identity) {
  if (!obs::tracingEnabled()) {
    return solve(request, identity, nullptr);
  }
  // The identity walk happened outside; its cost is the caller's to report.
  obs::RequestTrace trace;
  trace.totalSeconds = request.parseSeconds;
  if (request.parseSeconds > 0) trace.add(obs::Stage::kParse, request.parseSeconds);
  return solve(request, identity, &trace);
}

RequestOutcome SchedulingService::solve(const Request& request,
                                        const RequestIdentity& identity,
                                        obs::RequestTrace* trace) {
  obs::TraceSpan lookupSpan(obs::Stage::kCacheLookup, trace);
  // Armed `cache.get` faults force a miss — the solve path must stay correct
  // (if slower) when the cache tier misbehaves.
  std::optional<PortfolioResult> cached;
  if (!fault::injected(fault::sites::kCacheGet)) {
    cached = cache_.get(identity.fp, identity.key);
  }
  const double lookupSeconds = lookupSpan.stop();
  if (trace != nullptr) trace->totalSeconds += lookupSeconds;
  if (cached) {
    RequestOutcome outcome;
    outcome.ok = true;
    outcome.result = std::move(*cached);
    outcome.fromCache = true;
    outcome.fingerprint = identity.fp;
    if (trace != nullptr) {
      outcome.trace = std::make_shared<const obs::RequestTrace>(std::move(*trace));
    }
    countOutcome(outcome);
    return outcome;
  }
  const Clock::time_point solveStart = trace != nullptr ? Clock::now() : Clock::time_point{};
  RequestOutcome outcome = solveUncached(request, &pool_);
  outcome.fingerprint = identity.fp;
  // Degraded (deadline/failure-cut) fronts are partial by timing accident —
  // caching one would serve the truncation to every later identical request.
  if (outcome.ok && !outcome.result.degraded &&
      !fault::injected(fault::sites::kCachePut)) {
    cache_.put(identity.fp, identity.key, outcome.result);
  }
  if (trace != nullptr) {
    trace->totalSeconds += std::chrono::duration<double>(Clock::now() - solveStart).count();
    if (outcome.ok) addSolveStages(*trace, outcome.result);
    outcome.trace = std::make_shared<const obs::RequestTrace>(std::move(*trace));
  }
  countOutcome(outcome);
  return outcome;
}

BatchResult SchedulingService::solveBatch(const std::vector<Request>& requests) {
  const Clock::time_point start = Clock::now();

  BatchResult batch;
  batch.outcomes.resize(requests.size());
  batch.stats.requests = requests.size();

  const bool tracing = obs::tracingEnabled();

  // Group identical requests: each canonical key is solved exactly once.
  struct Group {
    Fingerprint fp;
    std::vector<std::size_t> indices;  // input slots sharing this key
    obs::RequestTrace trace;           // assembled only when tracing
  };
  std::unordered_map<std::string, Group> groups;
  std::vector<const std::string*> keyOrder;  // deterministic iteration order
  for (std::size_t i = 0; i < requests.size(); ++i) {
    obs::TraceSpan fingerprintSpan(obs::Stage::kFingerprint);
    RequestIdentity identity = requestIdentity(requests[i]);  // one walk: key + hash
    const double fingerprintSeconds = fingerprintSpan.stop();
    auto [it, inserted] = groups.try_emplace(std::move(identity.key));
    if (inserted) {
      it->second.fp = identity.fp;
      keyOrder.push_back(&it->first);
      if (tracing) {
        // The group's trace describes the representative slot's journey; a
        // duplicate slot shares it (like the result it shares).
        obs::RequestTrace& trace = it->second.trace;
        const double parse = requests[i].parseSeconds;
        if (parse > 0) trace.add(obs::Stage::kParse, parse);
        trace.add(obs::Stage::kFingerprint, fingerprintSeconds);
        trace.totalSeconds = parse + fingerprintSeconds;
      }
    }
    it->second.indices.push_back(i);
  }

  // Resolve cache hits up front; solve the misses with one pool task per
  // unique request (within-request solving stays serial in its worker — a
  // task blocking on sub-tasks could deadlock a saturated pool).
  struct Miss {
    const std::string* key;  // stable pointer into `groups`
    Group* group;            // non-const: the accounting loop moves its trace out
  };
  std::vector<Miss> misses;
  std::vector<RequestOutcome> missOutcomes;
  for (const std::string* key : keyOrder) {
    Group& group = groups.at(*key);
    obs::TraceSpan lookupSpan(obs::Stage::kCacheLookup, tracing ? &group.trace : nullptr);
    std::optional<PortfolioResult> cached;
    if (!fault::injected(fault::sites::kCacheGet)) {
      cached = cache_.get(group.fp, *key);
    }
    const double lookupSeconds = lookupSpan.stop();
    if (tracing) group.trace.totalSeconds += lookupSeconds;
    if (cached) {
      RequestOutcome outcome;
      outcome.ok = true;
      outcome.result = std::move(*cached);
      outcome.fromCache = true;
      outcome.fingerprint = group.fp;
      if (tracing) {
        outcome.trace = std::make_shared<const obs::RequestTrace>(std::move(group.trace));
      }
      batch.outcomes[group.indices.front()] = std::move(outcome);
      batch.stats.cacheHits += 1;
    } else {
      misses.push_back(Miss{key, &group});
    }
  }
  missOutcomes.resize(misses.size());
  // Per-miss solve wall, measured inside each task (only read when tracing:
  // it feeds totalSeconds, whose invariant is stages sum <= total).
  std::vector<double> missSolveSeconds(misses.size(), 0.0);
  {
    std::vector<std::future<void>> futures;
    futures.reserve(misses.size());
    for (std::size_t m = 0; m < misses.size(); ++m) {
      const Request* request = &requests[misses[m].group->indices.front()];
      RequestOutcome* out = &missOutcomes[m];
      double* solveSeconds = &missSolveSeconds[m];
      futures.push_back(pool_.submit([this, request, out, solveSeconds, tracing] {
        const Clock::time_point solveStart = tracing ? Clock::now() : Clock::time_point{};
        *out = solveUncached(*request, nullptr);
        if (tracing) {
          *solveSeconds = std::chrono::duration<double>(Clock::now() - solveStart).count();
        }
      }));
    }
    // Join every task before any unwind: they write through pointers into
    // missOutcomes/requests, which must outlive all of them.
    std::exception_ptr firstError;
    for (auto& future : futures) {
      try {
        future.get();
      } catch (...) {
        if (!firstError) firstError = std::current_exception();
      }
    }
    if (firstError) std::rethrow_exception(firstError);
  }
  for (std::size_t m = 0; m < misses.size(); ++m) {
    Group& group = *misses[m].group;
    RequestOutcome& out = missOutcomes[m];
    out.fingerprint = group.fp;
    if (tracing) {
      group.trace.totalSeconds += missSolveSeconds[m];
      if (out.ok) addSolveStages(group.trace, out.result);
      out.trace = std::make_shared<const obs::RequestTrace>(std::move(group.trace));
    }
    if (out.ok) {
      if (!out.result.degraded && !fault::injected(fault::sites::kCachePut)) {
        cache_.put(group.fp, *misses[m].key, out.result);
      }
      batch.stats.solved += 1;
      accumulateMemberStats(batch.stats.members, out.result.solvers);
      for (const SolverContribution& c : out.result.solvers) {
        batch.stats.subHits += c.reused + c.seeded;
        batch.stats.subUnitsReused += c.reused;
      }
    }
    batch.outcomes[group.indices.front()] = std::move(out);
  }

  // Fan each group's outcome out to its duplicate slots. Every slot lands in
  // exactly one stats bucket: duplicates of a *failed* group count under
  // `failed` below, not under `deduped`, so the buckets sum to `requests`.
  for (const std::string* key : keyOrder) {
    const Group& group = groups.at(*key);
    const RequestOutcome& first = batch.outcomes[group.indices.front()];
    for (std::size_t d = 1; d < group.indices.size(); ++d) {
      RequestOutcome copy = first;
      copy.deduped = true;
      batch.outcomes[group.indices[d]] = std::move(copy);
      if (first.ok) batch.stats.deduped += 1;
    }
  }

  std::size_t degradedResponses = 0;
  for (const RequestOutcome& outcome : batch.outcomes) {
    if (!outcome.ok) {
      batch.stats.failed += 1;
    } else if (outcome.result.degraded) {
      degradedResponses += 1;
    }
  }
  batch.stats.wallSeconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (batch.stats.wallSeconds > 0) {
    batch.stats.requestsPerSecond =
        static_cast<double>(batch.stats.requests) / batch.stats.wallSeconds;
  }
  if (obs::metricsEnabled()) {
    static obs::Counter& solved = obs::registry().counter(obs::names::kRequestsSolved);
    static obs::Counter& cacheHits = obs::registry().counter(obs::names::kRequestsCacheHit);
    static obs::Counter& failed = obs::registry().counter(obs::names::kRequestsFailed);
    solved.add(batch.stats.solved);
    cacheHits.add(batch.stats.cacheHits);
    failed.add(batch.stats.failed);
    if (degradedResponses > 0) {
      obs::registry().counter(obs::names::kDegradedResponses).add(degradedResponses);
    }
  }
  return batch;
}

std::string describeOutcome(const RequestOutcome& outcome) {
  std::ostringstream os;
  if (!outcome.ok) {
    os << "error: " << outcome.error << '\n';
    return std::move(os).str();
  }
  const PortfolioResult& r = outcome.result;
  os << "front:" << r.front.size() << " exact:" << (r.exactUsed ? 1 : 0)
     << " exhausted:" << (r.budgetExhausted ? 1 : 0) << '\n';
  for (const core::ParetoPoint& p : r.front) {
    os << renderRealHex(p.period) << ' ' << renderRealHex(p.latency);
    if (p.mapping) os << ' ' << p.mapping->describe();
    os << '\n';
  }
  for (const SolverContribution& c : r.solvers) {
    os << c.solver << ':' << c.points << (c.completed ? "" : "!");
    // Drop-policy skips are part of the deterministic result (identical
    // serial vs pooled), so they belong in the canonical rendering too.
    if (c.skipped > 0) os << '~' << c.skipped;
    os << '\n';
  }
  return std::move(os).str();
}

}  // namespace pipesched::service
