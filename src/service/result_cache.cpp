#include "pipesched/service/result_cache.hpp"

#include <algorithm>

namespace pipesched::service {

ResultCache::ResultCache(std::size_t capacity, std::size_t shards) : capacity_(capacity) {
  if (shards == 0) shards = 1;
  shards = std::min(shards, std::max<std::size_t>(capacity, 1));
  perShardCapacity_ = capacity == 0 ? 0 : (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

ResultCache::Shard& ResultCache::shardFor(const Fingerprint& fp) {
  return *shards_[fp.hi % shards_.size()];
}

std::optional<PortfolioResult> ResultCache::get(const Fingerprint& fp, const std::string& key) {
  Shard& shard = shardFor(fp);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // refresh
  return it->second->result;
}

void ResultCache::put(const Fingerprint& fp, const std::string& key, PortfolioResult result) {
  if (capacity_ == 0) return;
  Shard& shard = shardFor(fp);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->result = std::move(result);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= perShardCapacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.push_front(Entry{key, std::move(result)});
  shard.index.emplace(shard.lru.front().key, shard.lru.begin());
  ++shard.insertions;
}

CacheStats ResultCache::stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.insertions += shard->insertions;
    total.evictions += shard->evictions;
    total.entries += shard->lru.size();
  }
  return total;
}

void ResultCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace pipesched::service
