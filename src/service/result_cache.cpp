#include "pipesched/service/result_cache.hpp"

namespace pipesched::service {

// The whole-result instantiation is compiled once here; the sub-result store
// (ShardedLruStore<SubResult>, see portfolio.hpp) instantiates where used.
template class ShardedLruStore<PortfolioResult>;

}  // namespace pipesched::service
