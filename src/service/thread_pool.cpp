#include "pipesched/service/thread_pool.hpp"

#include <algorithm>

namespace pipesched::service {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  if (workers_.empty()) {
    packaged();  // inline mode
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  ready_.notify_one();
  return future;
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

std::size_t ThreadPool::defaultThreadCount() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace pipesched::service
