#include "pipesched/service/portfolio.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <functional>
#include <future>
#include <iterator>
#include <optional>
#include <utility>
#include <vector>

#include "pipesched/c2c/heterogeneous.hpp"
#include "pipesched/core/pareto.hpp"
#include "pipesched/exact/exhaustive.hpp"
#include "pipesched/exp/pareto_study.hpp"
#include "pipesched/fault/fault.hpp"
#include "pipesched/heuristics/annealing.hpp"
#include "pipesched/heuristics/local_search.hpp"
#include "pipesched/heuristics/registry.hpp"
#include "pipesched/obs/trace.hpp"
#include "pipesched/service/fingerprint.hpp"

namespace pipesched::service {

namespace {

using Clock = std::chrono::steady_clock;

struct Slot {
  std::vector<core::ParetoPoint> points;
  SolverContribution contribution;
  /// The wall-clock deadline (request deadline or timeBudgetMs) cut this
  /// member short or dropped it before it started — the run is degraded.
  bool deadlineCut = false;
};

/// Share identity of a sweeping member's unit at threshold `t`: the member
/// tag plus the exact hexfloat rendering, so distinct doubles never collide
/// and equal thresholds from different sweep grids always meet.
std::string sweepUnitKey(const std::string& memberTag, Real t) {
  return memberTag + '@' + renderRealHex(t);
}

/// The grid anchor every sweep of this (instance, heuristic) pair recomputes:
/// the failure threshold (a full run-to-exhaustion heuristic run) for the
/// period family, the Lemma-1 latency optimum otherwise. Sweep-independent,
/// hence memoized under the instance identity when sharing is on.
Real gridAnchor(const core::Evaluator& eval, const heuristics::MappingHeuristic& h,
                const SubShare* share, std::size_t& seeded) {
  const std::string key = "grid:H" + std::to_string(static_cast<int>(h.id()) + 1);
  if (share != nullptr) {
    if (const std::optional<SubResult> memo = share->load(key); memo && memo->scalar) {
      ++seeded;
      return *memo->scalar;
    }
  }
  const Real lo = h.objective() == heuristics::Objective::kMinLatencyForPeriod
                      ? h.failureThreshold(eval)
                      : eval.optimalLatency();
  if (share != nullptr) {
    SubResult memo;
    memo.scalar = lo;
    share->store(key, memo);
  }
  return lo;
}

/// The grid every threshold-sweeping member shares: from the base
/// heuristic's failure threshold (resp. the latency optimum) up to that
/// value times sweep.range — the same formula as exp::runParetoStudy.
struct Grid {
  Real lo = 0;
  Real hi = 0;

  Grid(const core::Evaluator& eval, const heuristics::MappingHeuristic& h, Real range,
       const SubShare* share, std::size_t& seeded) {
    lo = gridAnchor(eval, h, share, seeded);
    hi = lo * range;
  }
};

core::ParetoPoint makePoint(const core::Metrics& metrics, core::IntervalMapping mapping) {
  core::ParetoPoint p;
  p.period = metrics.period;
  p.latency = metrics.latency;
  p.mapping = std::move(mapping);
  return p;
}

// ---------------------------------------------------------------------------
// H1..H6: one registry heuristic swept over the threshold grid (the
// pre-registry portfolio behavior, byte for byte).

class HeuristicMember final : public PortfolioMember {
 public:
  explicit HeuristicMember(heuristics::HeuristicId id) : hid_(id) {}

  [[nodiscard]] std::string id() const override {
    return "H" + std::to_string(static_cast<int>(hid_) + 1);
  }
  [[nodiscard]] std::string solverName() const override {
    return heuristics::makeHeuristic(hid_)->name();
  }
  [[nodiscard]] bool accepts(const core::Evaluator&, const PortfolioConfig&) const override {
    return true;
  }

  class SweepRun final : public Run {
   public:
    SweepRun(std::unique_ptr<heuristics::MappingHeuristic> h, const core::Evaluator& eval,
             const SweepSpec& sweep, const SubShare* share)
        : h_(std::move(h)),
          eval_(eval),
          sweep_(sweep),
          grid_(eval, *h_, sweep.range, share, seeded_) {}

    [[nodiscard]] std::size_t units() const override { return sweep_.points; }

    [[nodiscard]] std::string unitKey(std::size_t i) const override {
      return sweepUnitKey("H" + std::to_string(static_cast<int>(h_->id()) + 1),
                          exp::sweepThreshold(grid_.lo, grid_.hi, sweep_.points, i));
    }

    [[nodiscard]] std::vector<core::ParetoPoint> unit(std::size_t i) override {
      const Real t = exp::sweepThreshold(grid_.lo, grid_.hi, sweep_.points, i);
      last_ = h_->run(eval_, t);
      if (!last_->success) return {};
      std::vector<core::ParetoPoint> out;
      out.push_back(makePoint(last_->metrics, last_->mapping));
      return out;
    }

    void attachSeed(std::size_t, SubResult& memo) override {
      // The raw result is the refiners' warm-start seed — published even on
      // failure (the annealing refiner anneals from infeasible seeds too).
      if (last_) memo.seed = *last_;
    }

    [[nodiscard]] std::size_t seeded() const override { return seeded_; }

   private:
    std::unique_ptr<heuristics::MappingHeuristic> h_;
    const core::Evaluator& eval_;
    SweepSpec sweep_;
    std::size_t seeded_ = 0;
    Grid grid_;
    std::optional<heuristics::Result> last_;
  };

  [[nodiscard]] std::unique_ptr<Run> start(const core::Evaluator& eval, const SweepSpec& sweep,
                                           const PortfolioConfig&,
                                           const SubShare* share) const override {
    return std::make_unique<SweepRun>(heuristics::makeHeuristic(hid_), eval, sweep, share);
  }

 private:
  heuristics::HeuristicId hid_;
};

// ---------------------------------------------------------------------------
// ls:HN / sa:HN: refiners — at each grid point, run the base heuristic, then
// polish its mapping under the same threshold. Local search accepts only
// lexicographically better neighbors and annealing returns the best feasible
// state seen starting from the seed, so a refined point is never dominated
// by its seed's point at the same threshold (the property suite pins this).

enum class RefinerKind { kLocalSearch, kAnnealing };

class RefinerMember final : public PortfolioMember {
 public:
  RefinerMember(RefinerKind kind, heuristics::HeuristicId base) : kind_(kind), base_(base) {}

  [[nodiscard]] std::string id() const override {
    return (kind_ == RefinerKind::kLocalSearch ? "ls:H" : "sa:H") +
           std::to_string(static_cast<int>(base_) + 1);
  }
  [[nodiscard]] std::string solverName() const override { return id(); }
  [[nodiscard]] bool accepts(const core::Evaluator&, const PortfolioConfig&) const override {
    return true;
  }

  class RefineRun final : public Run {
   public:
    RefineRun(RefinerKind kind, std::unique_ptr<heuristics::MappingHeuristic> h,
              const core::Evaluator& eval, const SweepSpec& sweep, std::size_t annealingMoves,
              const SubShare* share)
        : kind_(kind),
          h_(std::move(h)),
          eval_(eval),
          sweep_(sweep),
          share_(share),
          seeded_(0),
          grid_(eval, *h_, sweep.range, share, seeded_),
          annealingMoves_(std::max<std::size_t>(1, annealingMoves)) {}

    [[nodiscard]] std::size_t units() const override { return sweep_.points; }

    [[nodiscard]] std::string unitKey(std::size_t i) const override {
      const Real t = exp::sweepThreshold(grid_.lo, grid_.hi, sweep_.points, i);
      // The annealing refiner's output depends on the move budget; embed it
      // so services configured differently can never alias a unit.
      return kind_ == RefinerKind::kLocalSearch
                 ? sweepUnitKey(baseTag("ls:H"), t)
                 : sweepUnitKey(baseTag("sa:H") + ":m" + std::to_string(annealingMoves_), t);
    }

    [[nodiscard]] std::vector<core::ParetoPoint> unit(std::size_t i) override {
      const Real t = exp::sweepThreshold(grid_.lo, grid_.hi, sweep_.points, i);
      // Seed acquisition: the base heuristic's run at t is itself a shareable
      // sub-result — reuse the cached one (byte-identical: the heuristics are
      // deterministic) or compute and publish it for the other refiners.
      heuristics::Result seed;
      bool haveSeed = false;
      const std::string baseKey = sweepUnitKey(baseTag("H"), t);
      if (share_ != nullptr) {
        if (const std::optional<SubResult> memo = share_->load(baseKey);
            memo && memo->seed) {
          seed = *memo->seed;
          haveSeed = true;
          ++seeded_;
        }
      }
      if (!haveSeed) {
        seed = h_->run(eval_, t);
        if (share_ != nullptr) {
          // Publish exactly what the base member itself would have: its unit
          // points plus the raw result as the seed payload.
          SubResult memo;
          if (seed.success) memo.points.push_back(makePoint(seed.metrics, seed.mapping));
          memo.seed = seed;
          share_->store(baseKey, std::move(memo));
        }
      }
      std::vector<core::ParetoPoint> out;
      if (kind_ == RefinerKind::kLocalSearch) {
        // Mirrors heuristics::refineWithLocalSearch with an injected seed:
        // polish under the same threshold, report the refined mapping.
        const heuristics::LocalSearchResult refined =
            heuristics::localSearch(eval_, seed.mapping, h_->objective(), t);
        if (refined.feasible) out.push_back(makePoint(refined.metrics, refined.mapping));
      } else {
        // The seed mapping is valid even when the heuristic misses the
        // threshold — the refiner may still reach feasibility from it.
        heuristics::AnnealingOptions options;
        options.moves = annealingMoves_;
        // Deterministic but decorrelated across thresholds and base
        // heuristics. Keyed on the *threshold bits*, not the grid index, so
        // the unit is a pure function of (instance, member, threshold) and
        // equal thresholds from different sweep grids share one result.
        options.seed = 0x9e3779b97f4a7c15ULL ^
                       (std::bit_cast<std::uint64_t>(t) * 2654435761ULL) ^
                       static_cast<std::uint64_t>(h_->id());
        const heuristics::AnnealingResult r =
            heuristics::anneal(eval_, seed.mapping, h_->objective(), t, options);
        if (r.feasible) out.push_back(makePoint(r.metrics, r.mapping));
      }
      return out;
    }

    [[nodiscard]] std::size_t seeded() const override { return seeded_; }

   private:
    [[nodiscard]] std::string baseTag(const char* prefix) const {
      return prefix + std::to_string(static_cast<int>(h_->id()) + 1);
    }

    RefinerKind kind_;
    std::unique_ptr<heuristics::MappingHeuristic> h_;
    const core::Evaluator& eval_;
    SweepSpec sweep_;
    const SubShare* share_;
    std::size_t seeded_;
    Grid grid_;
    std::size_t annealingMoves_;
  };

  [[nodiscard]] std::unique_ptr<Run> start(const core::Evaluator& eval, const SweepSpec& sweep,
                                           const PortfolioConfig& config,
                                           const SubShare* share) const override {
    return std::make_unique<RefineRun>(kind_, heuristics::makeHeuristic(base_), eval, sweep,
                                       config.annealingMoves, share);
  }

 private:
  RefinerKind kind_;
  heuristics::HeuristicId base_;
};

// ---------------------------------------------------------------------------
// c2c / c2c:ls: the chains-to-chains solvers, on instances they accept
// (communication-homogeneous platforms). Their partitions ignore
// communication, but every emitted point is the partition *re-scored*
// through core::Evaluator — a genuine mapping, merged on equal terms.

/// HeteroSolution -> evaluated ParetoPoint (nullopt-free: the partition is
/// structurally valid by construction).
std::vector<core::ParetoPoint> evaluateC2c(const core::Evaluator& eval,
                                           const c2c::HeteroSolution& solution) {
  if (solution.partition.intervalCount() == 0) return {};
  core::IntervalMapping mapping = core::IntervalMapping::fromCuts(
      eval.pipeline().stageCount(), solution.partition.ends, solution.processorOrder);
  const core::Metrics metrics = eval.evaluate(mapping);
  std::vector<core::ParetoPoint> out;
  out.push_back(makePoint(metrics, std::move(mapping)));
  return out;
}

class C2cDpMember final : public PortfolioMember {
 public:
  [[nodiscard]] std::string id() const override { return "c2c"; }
  [[nodiscard]] std::string solverName() const override { return "c2c-dp"; }
  [[nodiscard]] bool accepts(const core::Evaluator& eval,
                             const PortfolioConfig&) const override {
    return eval.platform().isCommHomogeneous();
  }

  class LadderRun final : public Run {
   public:
    explicit LadderRun(const core::Evaluator& eval)
        : eval_(eval), bySpeed_(eval.platform().processorsBySpeed()) {}

    // One unit per processor count k+1: the DP on the k+1 fastest
    // processors in speed order traces the latency/period trade-off the
    // same way the sweep members trace thresholds.
    [[nodiscard]] std::size_t units() const override { return bySpeed_.size(); }

    // Sweep-independent entirely: a warm sweep reuses the whole ladder.
    [[nodiscard]] std::string unitKey(std::size_t i) const override {
      return "c2c@k" + std::to_string(i + 1);
    }

    [[nodiscard]] std::vector<core::ParetoPoint> unit(std::size_t i) override {
      // Restrict the DP to the i+1 fastest processors (the order must cover
      // the whole speed list it is given), then translate its local indices
      // back to platform processor ids.
      std::vector<Real> speeds(i + 1);
      std::vector<std::size_t> order(i + 1);
      for (std::size_t j = 0; j <= i; ++j) {
        speeds[j] = eval_.platform().speed(bySpeed_[j]);
        order[j] = j;
      }
      c2c::HeteroSolution solution =
          c2c::dpWithFixedOrder(eval_.pipeline().works(), speeds, order);
      for (std::size_t& proc : solution.processorOrder) proc = bySpeed_[proc];
      return evaluateC2c(eval_, solution);
    }

   private:
    const core::Evaluator& eval_;
    std::vector<std::size_t> bySpeed_;
  };

  [[nodiscard]] std::unique_ptr<Run> start(const core::Evaluator& eval, const SweepSpec&,
                                           const PortfolioConfig&,
                                           const SubShare*) const override {
    return std::make_unique<LadderRun>(eval);
  }
};

class C2cLocalSearchMember final : public PortfolioMember {
 public:
  [[nodiscard]] std::string id() const override { return "c2c:ls"; }
  [[nodiscard]] std::string solverName() const override { return "c2c-ls"; }
  [[nodiscard]] bool accepts(const core::Evaluator& eval,
                             const PortfolioConfig&) const override {
    return eval.platform().isCommHomogeneous();
  }

  class OrderRun final : public Run {
   public:
    explicit OrderRun(const core::Evaluator& eval) : eval_(eval) {}

    [[nodiscard]] std::size_t units() const override { return 1; }

    [[nodiscard]] std::string unitKey(std::size_t) const override { return "c2c:ls"; }

    [[nodiscard]] std::vector<core::ParetoPoint> unit(std::size_t) override {
      const c2c::HeteroSolution solution =
          c2c::heteroLocalSearch(eval_.pipeline().works(), eval_.platform().speeds());
      return evaluateC2c(eval_, solution);
    }

   private:
    const core::Evaluator& eval_;
  };

  [[nodiscard]] std::unique_ptr<Run> start(const core::Evaluator& eval, const SweepSpec&,
                                           const PortfolioConfig&,
                                           const SubShare*) const override {
    return std::make_unique<OrderRun>(eval);
  }
};

// ---------------------------------------------------------------------------
// exact: the exhaustive enumerator, on instances small enough for it.

class ExactMember final : public PortfolioMember {
 public:
  [[nodiscard]] std::string id() const override { return "exact"; }
  [[nodiscard]] std::string solverName() const override { return "exact"; }
  [[nodiscard]] bool accepts(const core::Evaluator& eval,
                             const PortfolioConfig& config) const override {
    return exactEligible(eval.pipeline().stageCount(), eval.platform().processorCount(),
                         config);
  }

  class EnumRun final : public Run {
   public:
    EnumRun(const core::Evaluator& eval, std::uint64_t mappingLimit)
        : eval_(eval), mappingLimit_(mappingLimit) {}

    [[nodiscard]] std::size_t units() const override { return 1; }

    // The enumerated front depends on the mapping limit; embed it. Truncated
    // units are never published (the runner checks truncated()), so a cached
    // entry is always a complete enumeration.
    [[nodiscard]] std::string unitKey(std::size_t) const override {
      return "exact:L" + std::to_string(mappingLimit_);
    }

    [[nodiscard]] std::vector<core::ParetoPoint> unit(std::size_t) override {
      exact::ExhaustiveOptions options;
      options.mappingLimit = mappingLimit_;
      try {
        return exact::exhaustiveParetoFront(eval_, options);
      } catch (const ModelError&) {
        // Mapping limit hit: the exact member drops out, the heuristics
        // carry the front.
        truncated_ = true;
        return {};
      }
    }

    [[nodiscard]] bool truncated() const override { return truncated_; }

   private:
    const core::Evaluator& eval_;
    std::uint64_t mappingLimit_;
    bool truncated_ = false;
  };

  [[nodiscard]] std::unique_ptr<Run> start(const core::Evaluator& eval, const SweepSpec&,
                                           const PortfolioConfig& config,
                                           const SubShare*) const override {
    return std::make_unique<EnumRun>(eval, config.budget.exactMappingLimit);
  }
};

// ---------------------------------------------------------------------------
// Registry.

std::unique_ptr<PortfolioMember> makeMember(const std::string& id) {
  const auto heuristicId = [](char digit) -> std::optional<heuristics::HeuristicId> {
    if (digit < '1' || digit > '6') return std::nullopt;
    return static_cast<heuristics::HeuristicId>(digit - '1');
  };
  if (id.size() == 2 && id[0] == 'H') {
    if (const auto h = heuristicId(id[1])) return std::make_unique<HeuristicMember>(*h);
  }
  if (id.size() == 5 && (id.rfind("ls:H", 0) == 0 || id.rfind("sa:H", 0) == 0)) {
    if (const auto h = heuristicId(id[4])) {
      const RefinerKind kind =
          id[0] == 'l' ? RefinerKind::kLocalSearch : RefinerKind::kAnnealing;
      return std::make_unique<RefinerMember>(kind, *h);
    }
  }
  if (id == "c2c") return std::make_unique<C2cDpMember>();
  if (id == "c2c:ls") return std::make_unique<C2cLocalSearchMember>();
  if (id == "exact") return std::make_unique<ExactMember>();
  throw ModelError("unknown portfolio member '" + id +
                   "' (expected H1..H6, ls:H1..ls:H6, sa:H1..sa:H6, c2c, c2c:ls, exact)");
}

/// Drives one member's work session: the shared budget / deadline / drop
/// loop every member goes through, writing points + stats into its slot.
/// With `share`, whole units are served from / published to the sub-result
/// cache — the points that flow into the slot are byte-identical either way
/// (every memoized unit is a pure function of its share key), so the drop
/// policy, the budget accounting and the merged front cannot diverge.
void runMember(const PortfolioMember& member, const core::Evaluator& eval,
               const SweepSpec& sweep, const PortfolioConfig& config, const Deadline& deadline,
               const SubShare* share, Slot& slot) {
  // Always timed: two clock reads against a per-member run that is at least
  // microseconds of work, and the trace path needs the value even when the
  // registry is off.
  const Clock::time_point memberStart = Clock::now();
  slot.contribution.solver = member.solverName();
  // Fault site "member.<id>", e.g. member.H3. Site-name built only when a
  // spec is armed so the disarmed path stays allocation-free.
  const std::string faultSite =
      fault::armed() ? std::string(fault::sites::kMemberPrefix) + member.id() : std::string();
  // Drop a not-yet-started member outright when the deadline already passed:
  // start() itself can be a full heuristic run (the grid anchor).
  if (deadline.expired()) {
    slot.contribution.completed = false;
    slot.deadlineCut = true;
    return;
  }
  std::unique_ptr<PortfolioMember::Run> run;
  try {
    run = member.start(eval, sweep, config, share);
  } catch (const std::exception&) {
    // Contain member failures: this member contributes nothing, the others'
    // merged front ships flagged degraded instead of failing the request.
    slot.contribution.failed = true;
    slot.contribution.completed = false;
    return;
  }
  const std::size_t units = run->units();
  slot.contribution.units = units;
  slot.contribution.completed = true;
  core::ParetoFrontBuilder own;  // the member's own running front (drop policy)
  std::size_t stale = 0;
  for (std::size_t i = 0; i < units; ++i) {
    if (i >= config.budget.maxRunsPerSolver) {
      slot.contribution.completed = false;
      break;
    }
    if (deadline.expired()) {
      slot.contribution.completed = false;
      slot.deadlineCut = true;
      break;
    }
    if (!faultSite.empty() && fault::injected(faultSite)) {
      slot.contribution.failed = true;
      slot.contribution.completed = false;
      break;
    }
    if (config.dropAfter > 0 && stale >= config.dropAfter) {
      slot.contribution.dropped = true;
      slot.contribution.skipped = units - i;
      break;
    }
    std::vector<core::ParetoPoint> points;
    bool fromShare = false;
    std::string key;
    if (share != nullptr) key = run->unitKey(i);
    if (!key.empty()) {
      if (std::optional<SubResult> memo = share->load(key)) {
        points = std::move(memo->points);
        fromShare = true;
        slot.contribution.reused += 1;
      }
    }
    if (!fromShare) {
      try {
        points = run->unit(i);
      } catch (const std::exception&) {
        slot.contribution.failed = true;
        slot.contribution.completed = false;
        break;
      }
      // Publish the fresh unit (plus the member's warm-start payload) unless
      // an internal limit truncated it — a cached unit must always stand for
      // the complete computation its key names.
      if (!key.empty() && !run->truncated()) {
        SubResult memo;
        memo.points = points;
        run->attachSeed(i, memo);
        share->store(key, std::move(memo));
      }
    }
    bool contributed = false;
    for (core::ParetoPoint& p : points) {
      // Offer coordinates only: the accept/duplicate decision never reads
      // the mapping, so don't deep-copy it into the drop-policy front.
      if (own.offer(core::ParetoPoint{p.period, p.latency, std::nullopt})) {
        contributed = true;
        slot.contribution.novel += 1;
      }
      slot.points.push_back(std::move(p));
    }
    stale = contributed ? 0 : stale + 1;
  }
  if (run->truncated()) slot.contribution.completed = false;
  slot.contribution.points = slot.points.size();
  slot.contribution.seeded = run->seeded();
  slot.contribution.wallSeconds =
      std::chrono::duration<double>(Clock::now() - memberStart).count();
  if (obs::metricsEnabled()) {
    static obs::Histogram& memberRuns =
        obs::registry().histogram(obs::names::kMemberRun, obs::Unit::kNanoseconds);
    memberRuns.recordSeconds(slot.contribution.wallSeconds);
  }
}

}  // namespace

bool exactEligible(std::size_t stages, std::size_t processors, const PortfolioConfig& config) {
  return config.useExact && processors <= config.exactProcessorLimit &&
         stages * processors <= config.exactCellLimit;
}

std::vector<PortfolioMemberInfo> portfolioMemberCatalog() {
  std::vector<PortfolioMemberInfo> catalog;
  for (const std::string& id : allPortfolioMembers()) {
    const std::unique_ptr<PortfolioMember> member = makeMember(id);
    std::string description;
    if (id.size() == 2 && id[0] == 'H') {
      description = "registry heuristic swept over the threshold grid";
    } else if (id.rfind("ls:", 0) == 0) {
      description = "steepest-descent refiner seeded from " + id.substr(3) + " per grid point";
    } else if (id.rfind("sa:", 0) == 0) {
      description = "annealing refiner seeded from " + id.substr(3) + " per grid point";
    } else if (id == "c2c") {
      description = "chains-to-chains fixed-order DP over the k fastest processors";
    } else if (id == "c2c:ls") {
      description = "chains-to-chains processor-order local search";
    } else {
      description = "exhaustive enumerator on exact-eligible instances";
    }
    catalog.push_back(PortfolioMemberInfo{id, member->solverName(), std::move(description)});
  }
  return catalog;
}

std::vector<std::string> defaultPortfolioMembers() {
  return {"H1", "H2", "H3", "H4", "H5", "H6", "exact"};
}

std::vector<std::string> allPortfolioMembers() {
  std::vector<std::string> ids;
  for (int h = 1; h <= 6; ++h) ids.push_back("H" + std::to_string(h));
  for (int h = 1; h <= 6; ++h) ids.push_back("ls:H" + std::to_string(h));
  for (int h = 1; h <= 6; ++h) ids.push_back("sa:H" + std::to_string(h));
  ids.emplace_back("c2c");
  ids.emplace_back("c2c:ls");
  ids.emplace_back("exact");
  return ids;
}

std::vector<std::unique_ptr<PortfolioMember>> makePortfolioMembers(
    const PortfolioConfig& config) {
  const std::vector<std::string> ids =
      config.members.empty() ? defaultPortfolioMembers() : config.members;
  std::vector<std::unique_ptr<PortfolioMember>> members;
  members.reserve(ids.size());
  for (const std::string& id : ids) members.push_back(makeMember(id));
  return members;
}

PortfolioResult runPortfolio(const core::Evaluator& eval, const SweepSpec& sweep,
                             const PortfolioConfig& config, ThreadPool* pool,
                             const SubShare* share, const Deadline& requestDeadline) {
  if (sweep.points == 0) throw ModelError("runPortfolio: sweep.points must be >= 1");
  if (sweep.range <= 1) throw ModelError("runPortfolio: sweep.range must be > 1");

  // Effective deadline: the earlier of the config's wall-clock budget
  // (relative, anchored here) and the caller's absolute request deadline.
  const Deadline deadline =
      Deadline::earlier(Deadline::in(config.budget.timeBudgetMs), requestDeadline);

  // The accepted-member list is a pure function of (instance, config), so
  // slot order — and with it the merge — is identical serial vs pooled.
  std::vector<std::unique_ptr<PortfolioMember>> members;
  bool exactUsed = false;
  for (std::unique_ptr<PortfolioMember>& member : makePortfolioMembers(config)) {
    if (!member->accepts(eval, config)) continue;
    exactUsed |= member->id() == "exact";
    members.push_back(std::move(member));
  }
  std::vector<Slot> slots(members.size());

  std::vector<std::function<void()>> tasks;
  tasks.reserve(slots.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    const PortfolioMember* member = members[i].get();
    Slot* slot = &slots[i];
    tasks.push_back([&eval, member, &sweep, &config, &deadline, share, slot] {
      runMember(*member, eval, sweep, config, deadline, share, *slot);
    });
  }

  const Clock::time_point raceStart = Clock::now();
  if (pool != nullptr && pool->threadCount() > 0) {
    std::vector<std::future<void>> futures;
    futures.reserve(tasks.size());
    for (auto& task : tasks) futures.push_back(pool->submit(std::move(task)));
    // Join EVERY member before unwinding: the tasks hold pointers into this
    // frame, so rethrowing while some are still queued would leave workers
    // writing through dangling pointers.
    std::exception_ptr firstError;
    for (auto& future : futures) {
      try {
        future.get();
      } catch (...) {
        if (!firstError) firstError = std::current_exception();
      }
    }
    if (firstError) std::rethrow_exception(firstError);
  } else {
    for (auto& task : tasks) task();
  }

  const Clock::time_point mergeStart = Clock::now();

  PortfolioResult result;
  result.exactUsed = exactUsed;
  result.memberRaceSeconds = std::chrono::duration<double>(mergeStart - raceStart).count();
  // Remember each slot's coordinates before the merge consumes its points:
  // paretoFront keeps the FIRST representative of duplicate coordinates, so
  // the first slot (race order) holding a front point's coordinates is the
  // member that contributed it.
  std::vector<std::vector<std::pair<Real, Real>>> coords(slots.size());
  std::vector<core::ParetoPoint> all;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    Slot& slot = slots[s];
    coords[s].reserve(slot.points.size());
    for (const core::ParetoPoint& p : slot.points) coords[s].emplace_back(p.period, p.latency);
    all.insert(all.end(), std::make_move_iterator(slot.points.begin()),
               std::make_move_iterator(slot.points.end()));
    result.budgetExhausted |= !slot.contribution.completed;
    if (slot.deadlineCut || slot.contribution.failed) {
      result.degraded = true;
      if (obs::metricsEnabled()) {
        obs::registry().counter(obs::names::kDegradedMembers).add();
      }
    }
    result.solvers.push_back(std::move(slot.contribution));
  }
  result.front = core::paretoFront(std::move(all));
  for (const core::ParetoPoint& p : result.front) {
    for (std::size_t s = 0; s < slots.size(); ++s) {
      const bool hit = std::any_of(coords[s].begin(), coords[s].end(), [&](const auto& c) {
        return nearlyEqual(c.first, p.period) && nearlyEqual(c.second, p.latency);
      });
      if (hit) {
        result.solvers[s].merged += 1;
        break;
      }
    }
  }
  result.mergeSeconds = std::chrono::duration<double>(Clock::now() - mergeStart).count();
  if (obs::metricsEnabled()) {
    obs::stageHistogram(obs::Stage::kMemberSolve).recordSeconds(result.memberRaceSeconds);
    obs::stageHistogram(obs::Stage::kMerge).recordSeconds(result.mergeSeconds);
  }
  return result;
}

}  // namespace pipesched::service
