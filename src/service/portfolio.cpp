#include "pipesched/service/portfolio.hpp"

#include <chrono>
#include <functional>
#include <future>
#include <iterator>
#include <utility>
#include <vector>

#include "pipesched/exact/exhaustive.hpp"
#include "pipesched/exp/pareto_study.hpp"
#include "pipesched/heuristics/registry.hpp"

namespace pipesched::service {

namespace {

using Clock = std::chrono::steady_clock;

struct Slot {
  std::vector<core::ParetoPoint> points;
  SolverContribution contribution;
};

struct Deadline {
  bool active = false;
  Clock::time_point at;

  [[nodiscard]] bool expired() const { return active && Clock::now() >= at; }
};

void runHeuristicSweep(const core::Evaluator& eval, const heuristics::MappingHeuristic& h,
                       const SweepSpec& sweep, const PortfolioBudget& budget,
                       const Deadline& deadline, Slot& slot) {
  slot.contribution.solver = h.name();
  const Real lo = h.objective() == heuristics::Objective::kMinLatencyForPeriod
                            ? h.failureThreshold(eval)
                            : eval.optimalLatency();
  const Real hi = lo * sweep.range;
  slot.contribution.completed = true;
  for (std::size_t i = 0; i < sweep.points; ++i) {
    if (i >= budget.maxRunsPerSolver || deadline.expired()) {
      slot.contribution.completed = false;
      break;
    }
    const Real t = exp::sweepThreshold(lo, hi, sweep.points, i);
    const heuristics::Result r = h.run(eval, t);
    if (!r.success) continue;
    core::ParetoPoint p;
    p.period = r.metrics.period;
    p.latency = r.metrics.latency;
    p.mapping = r.mapping;
    slot.points.push_back(std::move(p));
  }
  slot.contribution.points = slot.points.size();
}

void runExact(const core::Evaluator& eval, const PortfolioBudget& budget, Slot& slot) {
  slot.contribution.solver = "exact";
  exact::ExhaustiveOptions options;
  options.mappingLimit = budget.exactMappingLimit;
  try {
    slot.points = exact::exhaustiveParetoFront(eval, options);
    slot.contribution.completed = true;
  } catch (const ModelError&) {
    // Mapping limit hit: the exact member drops out, the heuristics carry
    // the front.
    slot.points.clear();
    slot.contribution.completed = false;
  }
  slot.contribution.points = slot.points.size();
}

}  // namespace

bool exactEligible(std::size_t stages, std::size_t processors, const PortfolioConfig& config) {
  return config.useExact && processors <= config.exactProcessorLimit &&
         stages * processors <= config.exactCellLimit;
}

PortfolioResult runPortfolio(const core::Evaluator& eval, const SweepSpec& sweep,
                             const PortfolioConfig& config, ThreadPool* pool) {
  if (sweep.points == 0) throw ModelError("runPortfolio: sweep.points must be >= 1");
  if (sweep.range <= 1) throw ModelError("runPortfolio: sweep.range must be > 1");

  Deadline deadline;
  if (config.budget.timeBudgetMs > 0) {
    deadline.active = true;
    deadline.at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double, std::milli>(
                                         config.budget.timeBudgetMs));
  }

  const bool exact = exactEligible(eval.pipeline().stageCount(),
                                   eval.platform().processorCount(), config);
  const auto members = heuristics::makeAllHeuristics();
  std::vector<Slot> slots(members.size() + (exact ? 1 : 0));

  std::vector<std::function<void()>> tasks;
  tasks.reserve(slots.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    const heuristics::MappingHeuristic* h = members[i].get();
    Slot* slot = &slots[i];
    tasks.push_back([&eval, h, &sweep, &config, &deadline, slot] {
      runHeuristicSweep(eval, *h, sweep, config.budget, deadline, *slot);
    });
  }
  if (exact) {
    Slot* slot = &slots.back();
    tasks.push_back([&eval, &config, slot] { runExact(eval, config.budget, *slot); });
  }

  if (pool != nullptr && pool->threadCount() > 0) {
    std::vector<std::future<void>> futures;
    futures.reserve(tasks.size());
    for (auto& task : tasks) futures.push_back(pool->submit(std::move(task)));
    // Join EVERY member before unwinding: the tasks hold pointers into this
    // frame, so rethrowing while some are still queued would leave workers
    // writing through dangling pointers.
    std::exception_ptr firstError;
    for (auto& future : futures) {
      try {
        future.get();
      } catch (...) {
        if (!firstError) firstError = std::current_exception();
      }
    }
    if (firstError) std::rethrow_exception(firstError);
  } else {
    for (auto& task : tasks) task();
  }

  PortfolioResult result;
  result.exactUsed = exact;
  std::vector<core::ParetoPoint> all;
  for (Slot& slot : slots) {
    all.insert(all.end(), std::make_move_iterator(slot.points.begin()),
               std::make_move_iterator(slot.points.end()));
    result.budgetExhausted |= !slot.contribution.completed;
    result.solvers.push_back(std::move(slot.contribution));
  }
  result.front = core::paretoFront(std::move(all));
  return result;
}

}  // namespace pipesched::service
