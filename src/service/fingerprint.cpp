#include "pipesched/service/fingerprint.hpp"

#include <cstdio>
#include <sstream>

#include "pipesched/core/hash.hpp"

namespace pipesched::service {

namespace {

void renderReals(std::ostream& os, const char* tag, const std::vector<Real>& values) {
  os << tag << ':' << values.size();
  for (const Real v : values) os << ' ' << renderRealHex(v);
  os << '\n';
}

const char* modelTag(core::CommModel model) {
  return model == core::CommModel::kSequential ? "sequential" : "overlapped";
}

/// Streams the sweep-independent *instance* fields (pipeline, platform,
/// comm model) through one sink. walkRequest layers the sweep spec on top;
/// the instance identity (sub-result cache key) stops here.
template <typename Sink>
void walkInstance(const Request& request, Sink&& sink) {
  sink.reals("work", request.pipeline.works());
  sink.reals("comm", request.pipeline.comms());
  const core::Platform& plat = request.platform;
  sink.reals("speeds", plat.speeds());
  if (plat.isCommHomogeneous()) {
    sink.reals("bandwidth", {plat.bandwidth()});
  } else {
    const std::size_t p = plat.processorCount();
    std::vector<Real> links;
    links.reserve(p * p);
    for (std::size_t u = 0; u < p; ++u) {
      for (std::size_t v = 0; v < p; ++v) {
        links.push_back(u == v ? Real(0) : plat.bandwidth(u, v));
      }
    }
    std::vector<Real> in(p), out(p);
    for (std::size_t u = 0; u < p; ++u) {
      in[u] = plat.inputBandwidth(u);
      out[u] = plat.outputBandwidth(u);
    }
    sink.reals("links", links);
    sink.reals("input-bandwidth", in);
    sink.reals("output-bandwidth", out);
  }
  sink.tag(modelTag(request.model));
}

/// Streams every model-relevant field of `request` through one sink. Keeping
/// the canonical text and the hash on the same field walk guarantees they can
/// never drift apart.
template <typename Sink>
void walkRequest(const Request& request, Sink&& sink) {
  sink.tag("pipesched-request-v1");
  walkInstance(request, sink);
  sink.size("points", request.sweep.points);
  sink.reals("range", {request.sweep.range});
}

/// The sub-result cache's identity: the instance under its own version tag,
/// no sweep fields.
template <typename Sink>
void walkInstanceOnly(const Request& request, Sink&& sink) {
  sink.tag("pipesched-instance-v1");
  walkInstance(request, sink);
}

struct TextSink {
  std::ostringstream os;
  void tag(const char* t) { os << t << '\n'; }
  void reals(const char* t, const std::vector<Real>& v) { renderReals(os, t, v); }
  void size(const char* t, std::size_t v) { os << t << ':' << v << '\n'; }
};

struct HashSink {
  core::Hasher hi{core::Hasher::kOffsetBasis};
  core::Hasher lo{0x9e3779b97f4a7c15ull};  // independent second stream
  void tag(const char* t) {
    const std::string s(t);
    hi.str(s);
    lo.str(s);
  }
  void reals(const char* t, const std::vector<Real>& v) {
    tag(t);
    hi.reals(v);
    lo.reals(v);
  }
  void size(const char* t, std::size_t v) {
    tag(t);
    hi.size(v);
    lo.size(v);
  }
};

}  // namespace

// Exact round-trippable rendering; hexfloat so distinct doubles never
// collapse to one decimal representation.
std::string renderRealHex(Real v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

std::string Fingerprint::hex() const { return core::hashHex(hi) + core::hashHex(lo); }

std::string canonicalKey(const Request& request) {
  TextSink sink;
  walkRequest(request, sink);
  return std::move(sink.os).str();
}

Fingerprint fingerprint(const Request& request) {
  HashSink sink;
  walkRequest(request, sink);
  return Fingerprint{sink.hi.digest(), sink.lo.digest()};
}

namespace {

/// Feeds one walk into both sinks — requestIdentity()'s single pass.
struct DualSink {
  TextSink text;
  HashSink hash;
  void tag(const char* t) {
    text.tag(t);
    hash.tag(t);
  }
  void reals(const char* t, const std::vector<Real>& v) {
    text.reals(t, v);
    hash.reals(t, v);
  }
  void size(const char* t, std::size_t v) {
    text.size(t, v);
    hash.size(t, v);
  }
};

}  // namespace

RequestIdentity requestIdentity(const Request& request) {
  DualSink sink;
  walkRequest(request, sink);
  return RequestIdentity{Fingerprint{sink.hash.hi.digest(), sink.hash.lo.digest()},
                         std::move(sink.text.os).str()};
}

std::string instanceKey(const Request& request) {
  TextSink sink;
  walkInstanceOnly(request, sink);
  return std::move(sink.os).str();
}

Fingerprint instanceFingerprint(const Request& request) {
  HashSink sink;
  walkInstanceOnly(request, sink);
  return Fingerprint{sink.hi.digest(), sink.lo.digest()};
}

RequestIdentity instanceIdentity(const Request& request) {
  DualSink sink;
  walkInstanceOnly(request, sink);
  return RequestIdentity{Fingerprint{sink.hash.hi.digest(), sink.hash.lo.digest()},
                         std::move(sink.text.os).str()};
}

}  // namespace pipesched::service
