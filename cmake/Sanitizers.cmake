# Sanitizer toolchain layer — one interface target every build product links.
#
# PIPESCHED_SANITIZE is a semicolon list of -fsanitize names. Supported
# presets (what CI runs, see .github/workflows/ci.yml):
#
#   -DPIPESCHED_SANITIZE=address;undefined   # ASan + UBSan, full ctest
#   -DPIPESCHED_SANITIZE=thread              # TSan, stress + concurrency suites
#
# The flags ride on the pipesched_sanitize INTERFACE target, which the core
# library links PUBLIC — so every test, tool, bench and example inherits the
# instrumentation transitively, and a target added tomorrow cannot silently
# build uninstrumented. Mixing instrumented and plain TUs is a classic source
# of false negatives (ASan interceptors miss, TSan misses synchronization);
# the single choke point rules that out.
#
# Runtime options (halt_on_error, suppressions) are NOT baked in here — they
# live in tools/sanitize/sanitize.env so local runs and CI share one set of
# defaults without rebuilding to change them.

set(PIPESCHED_SANITIZE "" CACHE STRING
    "Semicolon list of sanitizers to build with (address;undefined | thread | leak)")

add_library(pipesched_sanitize INTERFACE)
add_library(pipesched::sanitize ALIAS pipesched_sanitize)

if(PIPESCHED_SANITIZE)
  set(_allowed address undefined thread leak)
  foreach(_san IN LISTS PIPESCHED_SANITIZE)
    if(NOT _san IN_LIST _allowed)
      message(FATAL_ERROR
          "PIPESCHED_SANITIZE: unknown sanitizer '${_san}' (allowed: ${_allowed})")
    endif()
  endforeach()
  if("thread" IN_LIST PIPESCHED_SANITIZE AND
     ("address" IN_LIST PIPESCHED_SANITIZE OR "leak" IN_LIST PIPESCHED_SANITIZE))
    message(FATAL_ERROR
        "PIPESCHED_SANITIZE: 'thread' cannot be combined with 'address'/'leak' "
        "(the runtimes conflict; run them as separate builds like CI does)")
  endif()

  string(REPLACE ";" "," _fsanitize "${PIPESCHED_SANITIZE}")
  target_compile_options(pipesched_sanitize INTERFACE
      -fsanitize=${_fsanitize}
      # Usable stacks in reports, and no recovery: any report is a hard
      # failure at the instruction that raised it (UBSan would otherwise log
      # and continue, letting a red run exit 0).
      -fno-omit-frame-pointer
      -fno-sanitize-recover=all
      -g)
  target_link_options(pipesched_sanitize INTERFACE -fsanitize=${_fsanitize})

  # Sanitized tests run ~2-20x slower than native; the ctest TIMEOUT
  # properties multiply by this so slow instrumentation doesn't masquerade
  # as a deadlock (real deadlocks still fail, just later).
  set(PIPESCHED_TEST_TIMEOUT_MULTIPLIER 3)
  message(STATUS "pipesched: building with -fsanitize=${_fsanitize} "
                 "(test timeouts x${PIPESCHED_TEST_TIMEOUT_MULTIPLIER})")
else()
  set(PIPESCHED_TEST_TIMEOUT_MULTIPLIER 1)
endif()
