// The Theorem-1 NP-completeness gadget, end to end: build the reduction from
// a NUMERICAL MATCHING WITH TARGET SUMS instance to Hetero-1D-Partition, and
// demonstrate both directions of the equivalence on a YES- and a NO-instance.
//
// Build & run:  ./build/examples/np_hardness_gadget
#include <iostream>

#include "pipesched/c2c/nmwts.hpp"
#include "pipesched/exp/report.hpp"

namespace {

using namespace pipesched;

void demonstrate(const c2c::NmwtsInstance& inst, const std::string& label) {
  std::cout << "== " << label << " ==\n  x = {";
  for (std::size_t i = 0; i < inst.m(); ++i) std::cout << (i ? "," : "") << inst.x[i];
  std::cout << "}, y = {";
  for (std::size_t i = 0; i < inst.m(); ++i) std::cout << (i ? "," : "") << inst.y[i];
  std::cout << "}, z = {";
  for (std::size_t i = 0; i < inst.m(); ++i) std::cout << (i ? "," : "") << inst.z[i];
  std::cout << "}\n";

  const auto cert = c2c::solveNmwts(inst);
  std::cout << "  NMWTS: " << (cert ? "YES-instance" : "NO-instance") << "\n";

  const c2c::ReductionInstance red = c2c::buildReduction(inst);
  std::cout << "  Reduction: " << red.weights.size() << " tasks, " << red.speeds.size()
            << " processors, bound K = " << red.bound << "\n";

  const c2c::HeteroSolution best = c2c::heteroExhaustive(red.weights, red.speeds, 6);
  std::cout << "  Exhaustive Hetero-1D-Partition optimum: " << best.bottleneck << "\n";

  if (cert) {
    const c2c::HeteroSolution forward = c2c::reductionSolution(inst, *cert);
    std::cout << "  Forward direction: certificate -> partition with bottleneck "
              << forward.bottleneck << "\n";
    const auto back = c2c::extractCertificate(inst, forward);
    std::cout << "  Backward direction: partition -> certificate "
              << (back && c2c::verifyNmwts(inst, *back) ? "recovered and verified"
                                                        : "FAILED")
              << "\n";
  } else {
    std::cout << "  Theorem 1 predicts optimum > K = 1: "
              << (best.bottleneck > 1.0 + 1e-9 ? "confirmed" : "VIOLATED") << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Theorem 1 (paper): Hetero-1D-Partition is NP-complete, by reduction\n"
               "from NUMERICAL MATCHING WITH TARGET SUMS. This demo executes the\n"
               "reduction both ways on concrete instances.\n\n";
  // m = 2 keeps the exhaustive search over 3m = 6 processors instantaneous.
  demonstrate(c2c::NmwtsInstance{{1, 2}, {2, 1}, {3, 3}}, "YES-instance, m=2");
  demonstrate(c2c::NmwtsInstance{{1, 2}, {1, 2}, {1, 5}},
              "NO-instance with balanced sums, m=2");
  return 0;
}
