// Extension demo (the paper's "future work"): the evaluator and the splitting
// heuristics also run on *fully heterogeneous* platforms, where every link
// has its own bandwidth. This example compares a mapping chosen while
// ignoring link heterogeneity (comm-homogeneous approximation) against the
// heuristic run with full link awareness.
//
// Build & run:  ./build/examples/heterogeneous_links
#include <iostream>

#include "pipesched/exp/report.hpp"
#include "pipesched/heuristics/heuristics.hpp"
#include "pipesched/workload/generator.hpp"
#include "pipesched/workload/scenarios.hpp"

int main() {
  using namespace pipesched;

  const workload::Scenario scenario = workload::imageProcessingScenario();
  workload::Rng rng(0xF0E77);
  const core::Platform het = workload::randomHeterogeneousPlatform(10, rng, 2, 18);

  // Comm-homogeneous approximation of the same machines: identical links at
  // the average bandwidth.
  Real sum = 0;
  std::size_t links = 0;
  for (std::size_t u = 0; u < 10; ++u) {
    for (std::size_t v = 0; v < 10; ++v) {
      if (u == v) continue;
      sum += het.bandwidth(u, v);
      ++links;
    }
  }
  const core::Platform approx(het.speeds(), sum / static_cast<Real>(links));

  const core::Evaluator evalHet(scenario.pipeline, het);
  const core::Evaluator evalApprox(scenario.pipeline, approx);

  std::cout << "Application: " << scenario.description << "\n"
            << "Platform:    10 processors, per-link bandwidths U[2,18] (mean "
            << exp::formatReal(sum / static_cast<Real>(links)) << ")\n\n";

  const Real bound = 0.7 * evalHet.period(evalHet.optimalLatencyMapping());

  // (a) plan on the approximation, evaluate on reality;
  const auto planned = heuristics::spMonoP(evalApprox, bound);
  const core::Metrics actualOfPlanned = evalHet.evaluate(planned.mapping);
  // (b) plan with full link awareness.
  const auto aware = heuristics::spMonoP(evalHet, bound);

  exp::TextTable table;
  table.setHeader({"planning model", "mapping", "real period", "real latency"});
  table.addRow({"comm-homogeneous approx", planned.mapping.describe(),
                exp::formatReal(actualOfPlanned.period),
                exp::formatReal(actualOfPlanned.latency)});
  table.addRow({"link-aware (extension)", aware.mapping.describe(),
                exp::formatReal(aware.metrics.period),
                exp::formatReal(aware.metrics.latency)});
  table.print(std::cout);

  std::cout << "\nBoth rows are evaluated on the true heterogeneous platform. The\n"
               "link-aware run can only be equal or better on the period it was\n"
               "optimizing — the gap is the price of assuming homogeneous links.\n";
  return 0;
}
