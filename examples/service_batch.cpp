// Demo of the portfolio scheduling service: batch-solve the named scenarios
// plus a generated E2 suite, then show what the cache buys on a repeat.
#include <iostream>
#include <sstream>

#include "pipesched/service/service.hpp"
#include "pipesched/workload/generator.hpp"
#include "pipesched/workload/scenarios.hpp"

int main() {
  using namespace pipesched;

  // The request mix: every named scenario on the lab cluster, plus five
  // random E2 instances.
  std::vector<service::Request> requests;
  const core::Platform lab = workload::labCluster();
  for (workload::Scenario& scenario : workload::allScenarios()) {
    requests.push_back(service::Request{std::move(scenario.pipeline), lab,
                                        core::CommModel::kSequential, service::SweepSpec{},
                                        scenario.name});
  }
  workload::Rng rng(42);
  for (int i = 0; i < 5; ++i) {
    workload::InstancePair pair =
        workload::randomInstance(workload::ExperimentKind::kE2BalancedHetComm, 8, 5, rng);
    std::ostringstream name;
    name << "E2-random-" << i;
    requests.push_back(service::Request{std::move(pair.pipeline), std::move(pair.platform),
                                        core::CommModel::kSequential, service::SweepSpec{},
                                        name.str()});
  }

  service::ServiceConfig config;
  config.threads = service::ThreadPool::defaultThreadCount();
  service::SchedulingService svc(config);

  const service::BatchResult batch = svc.solveBatch(requests);
  std::cout << "solved " << batch.stats.requests << " requests in " << batch.stats.wallSeconds
            << " s (" << batch.stats.requestsPerSecond << " req/s, " << config.threads
            << " threads)\n\n";
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const service::RequestOutcome& outcome = batch.outcomes[i];
    std::cout << requests[i].name << " [" << service::fingerprint(requests[i]).hex().substr(0, 12)
              << "]: ";
    if (!outcome.ok) {
      std::cout << "error: " << outcome.error << "\n";
      continue;
    }
    std::cout << outcome.result.front.size() << "-point front";
    if (outcome.result.exactUsed) std::cout << " (exact raced)";
    std::cout << "\n";
    for (const core::ParetoPoint& p : outcome.result.front) {
      std::cout << "    period " << p.period << "  latency " << p.latency;
      if (p.mapping) std::cout << "  " << p.mapping->describe();
      std::cout << "\n";
    }
  }

  // Re-submit the same batch: every request is a cache hit.
  const service::BatchResult again = svc.solveBatch(requests);
  std::cout << "\nrepeat: " << again.stats.cacheHits << " cache hit(s) + "
            << again.stats.deduped << " dedup(s) of " << again.stats.requests
            << " requests in " << again.stats.wallSeconds << " s\n";
  const service::CacheStats cache = svc.cacheStats();
  std::cout << "cache: " << cache.entries << " entries, hit ratio " << cache.hitRatio() << "\n";

  // Widen the race: every catalog member (H1..H6, local-search and annealing
  // refiners, the c2c chain solvers, exact) with budget-aware dropping, and
  // show what each member contributed to the merged fronts.
  service::ServiceConfig wideConfig;
  wideConfig.cacheCapacity = 0;  // fresh solves: we want contribution stats
  wideConfig.portfolio.members = service::allPortfolioMembers();
  wideConfig.portfolio.dropAfter = 4;
  service::SchedulingService wideSvc(wideConfig);
  const service::BatchResult wide = wideSvc.solveBatch(requests);
  std::cout << "\nwidened portfolio (members=all, drop-after 4):\n";
  for (const service::MemberBatchStats& m : wide.stats.members) {
    std::cout << "  " << m.solver << ": " << m.points << " point(s), " << m.novel
              << " novel, " << m.merged << " on the merged front, " << m.skipped
              << " unit(s) skipped\n";
  }
  return 0;
}
