// Robustness study: the paper's cost model assumes exact stage durations;
// real clusters jitter. This example maps a genomics pipeline with every
// heuristic and measures how each mapping's throughput and latency degrade
// as per-data-set duration noise grows — the experiment behind the
// "robustness" rows of EXPERIMENTS.md.
//
// Build & run:  ./build/examples/robustness_study
#include <iostream>

#include "pipesched/exp/robustness_study.hpp"
#include "pipesched/heuristics/registry.hpp"
#include "pipesched/sim/perturbation.hpp"
#include "pipesched/workload/scenarios.hpp"

int main() {
  using namespace pipesched;

  const workload::Scenario scenario = workload::genomicsScenario();
  const core::Platform platform = workload::labCluster();
  const core::Evaluator eval(scenario.pipeline, platform);

  std::cout << "Application: " << scenario.description << "\n"
            << "Platform:    " << platform.describe() << "\n\n";

  // Full study: all six heuristics across noise amplitudes. Data sets arrive
  // at exactly the nominal rate, so every degradation factor > 1 is queueing
  // caused purely by variance.
  exp::RobustnessStudyConfig config;
  config.amplitudes = {0.0, 0.1, 0.25, 0.5};
  config.trials = 8;
  config.datasetCount = 400;
  config.warmup = 120;
  const exp::RobustnessStudy study = exp::runRobustnessStudy(eval, config);
  printRobustnessStudy(std::cout, study);

  // Zoom in: one mapping, one strong-noise run, dataset-level detail.
  const auto& h1 = study.rows.front();
  std::cout << "\nDetail: " << h1.heuristic << " under amplitude 0.5 — single run\n";

  const auto heuristic = heuristics::makeHeuristic(heuristics::HeuristicId::kH1SpMonoP);
  const auto mapped = heuristic->run(eval, heuristic->failureThreshold(eval) * 1.1);

  sim::SimConfig simConfig;
  simConfig.datasetCount = 50;
  simConfig.releaseInterval = mapped.metrics.period;
  sim::JitterModel jitter;
  jitter.computeAmplitude = 0.5;
  jitter.transferAmplitude = 0.5;
  jitter.seed = 42;
  const sim::SimReport run = sim::simulatePipelineJittered(eval, mapped.mapping, simConfig,
                                                           jitter);
  std::cout << "  predicted latency (Eq. 2): " << mapped.metrics.latency << "\n"
            << "  per-data-set latencies (first 10):";
  for (std::size_t k = 0; k < 10 && k < run.latencies.size(); ++k) {
    std::cout << ' ' << static_cast<int>(run.latencies[k] + 0.5);
  }
  std::cout << "\n  worst latency over the stream: " << run.maxLatency << "\n";
  std::cout << "\nReading: mono-criterion mappings with many intervals amplify jitter\n"
               "(more rendezvous points -> more waiting); the single-interval Lemma-1\n"
               "mapping is immune but has the worst nominal period. Robust deployments\n"
               "should budget the gap shown in the amplitude columns above.\n";
  return 0;
}
