// Quickstart: map a realistic image-processing pipeline onto a 10-node lab
// cluster with all six paper heuristics, then validate the chosen mapping
// with the discrete-event simulator.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "pipesched/core/evaluation.hpp"
#include "pipesched/exp/report.hpp"
#include "pipesched/heuristics/registry.hpp"
#include "pipesched/sim/pipeline_sim.hpp"
#include "pipesched/workload/scenarios.hpp"

int main() {
  using namespace pipesched;

  // 1. An application and a platform.
  const workload::Scenario scenario = workload::imageProcessingScenario();
  const core::Platform platform = workload::labCluster();
  const core::Evaluator eval(scenario.pipeline, platform);

  std::cout << "Application: " << scenario.description << "\n  "
            << scenario.pipeline.describe() << "\nPlatform:    " << platform.describe()
            << "\n\n";

  // 2. The two extreme solutions bracketing the bi-criteria trade-off.
  const core::IntervalMapping lemma1 = eval.optimalLatencyMapping();
  const core::Metrics initial = eval.evaluate(lemma1);
  std::cout << "Lemma-1 optimum (all stages on the fastest processor):\n  "
            << lemma1.describe() << "\n  period " << initial.period << ", latency "
            << initial.latency << "\n\n";

  // 3. Run every heuristic: period-constrained ones at 60% of the initial
  //    period, latency-constrained ones at 130% of the optimal latency.
  const Real periodBound = 0.6 * initial.period;
  const Real latencyBound = 1.3 * initial.latency;
  exp::TextTable table;
  table.setHeader({"heuristic", "objective", "threshold", "period", "latency", "intervals",
                   "status"});
  for (const auto& h : heuristics::makeAllHeuristics()) {
    const bool periodFamily =
        h->objective() == heuristics::Objective::kMinLatencyForPeriod;
    const Real threshold = periodFamily ? periodBound : latencyBound;
    const heuristics::Result r = h->run(eval, threshold);
    table.addRow({h->name(), periodFamily ? "period <= T" : "latency <= T",
                  exp::formatReal(threshold), exp::formatReal(r.metrics.period),
                  exp::formatReal(r.metrics.latency),
                  std::to_string(r.mapping.intervalCount()),
                  r.success ? "ok" : "FAILED"});
  }
  std::cout << "All heuristics (period bound " << exp::formatReal(periodBound)
            << ", latency bound " << exp::formatReal(latencyBound) << "):\n";
  table.print(std::cout);

  // 4. Validate the H1 mapping against the discrete-event simulator.
  const heuristics::Result h1 = heuristics::spMonoP(eval, periodBound);
  std::cout << "\nChosen mapping (H1): " << h1.mapping.describe() << "\n";

  sim::SimConfig simConfig;
  simConfig.datasetCount = 400;
  const sim::SimReport saturated = sim::simulatePipeline(eval, h1.mapping, simConfig);
  simConfig.datasetCount = 1;
  const sim::SimReport single = sim::simulatePipeline(eval, h1.mapping, simConfig);

  std::cout << "DES validation:\n"
            << "  predicted period  (Eq. 1): " << h1.metrics.period << "\n"
            << "  simulated period  (steady): " << saturated.steadyStatePeriod << "\n"
            << "  predicted latency (Eq. 2): " << h1.metrics.latency << "\n"
            << "  simulated latency (single data set): " << single.latencies.front() << "\n";
  return 0;
}
