// Skeleton-runtime demo: pick a mapping for a streaming ETL pipeline with the
// bi-criteria H4 heuristic, then actually *execute* it with the thread-based
// pipeline skeleton and compare wall-clock throughput against the model.
//
// Build & run:  ./build/examples/skeleton_runtime
#include <iostream>

#include "pipesched/exp/report.hpp"
#include "pipesched/heuristics/heuristics.hpp"
#include "pipesched/runtime/executor.hpp"
#include "pipesched/workload/scenarios.hpp"

int main() {
  using namespace pipesched;

  const workload::Scenario scenario = workload::etlScenario();
  const core::Platform platform = workload::labCluster();
  const core::Evaluator eval(scenario.pipeline, platform);

  std::cout << "Application: " << scenario.description << "\nPlatform:    "
            << platform.describe() << "\n\n";

  // Ask H4 (Sp bi P) for the smallest-latency mapping at 70% of the
  // single-processor period.
  const core::Metrics initial = eval.evaluate(eval.optimalLatencyMapping());
  const Real periodBound = 0.7 * initial.period;
  const heuristics::Result chosen = heuristics::spBiP(eval, periodBound);
  std::cout << "H4 mapping for period <= " << exp::formatReal(periodBound) << ":\n  "
            << chosen.mapping.describe() << "\n  predicted period "
            << exp::formatReal(chosen.metrics.period) << ", predicted latency "
            << exp::formatReal(chosen.metrics.latency) << "\n\n";

  // Stage labels per interval, for readability.
  for (std::size_t j = 0; j < chosen.mapping.intervalCount(); ++j) {
    const auto iv = chosen.mapping.interval(j);
    std::cout << "  P" << chosen.mapping.processor(j) << " runs stages:";
    for (std::size_t k = iv.first; k <= iv.last; ++k) {
      std::cout << " " << scenario.stageNames[k];
    }
    std::cout << "\n";
  }

  runtime::ExecConfig config;
  config.datasetCount = 120;
  config.timeScale = 2e-4;  // 1 model time unit == 0.2 ms
  const runtime::ExecReport report = runtime::executeMapping(eval, chosen.mapping, config);

  std::cout << "\nThreaded execution of " << config.datasetCount << " records:\n"
            << "  processed:            " << report.processedCount
            << (report.outputsInOrder ? " (in order)" : " (ORDER VIOLATION)") << "\n"
            << "  makespan:             " << exp::formatReal(report.makespanSeconds * 1e3)
            << " ms\n"
            << "  steady period:        "
            << exp::formatReal(report.steadyPeriodModelUnits, 3) << " model units (predicted "
            << exp::formatReal(chosen.metrics.period, 3) << ")\n"
            << "  model-vs-wall ratio:  "
            << exp::formatReal(report.steadyPeriodModelUnits / chosen.metrics.period, 2)
            << "x (thread scheduling overhead)\n";
  return 0;
}
