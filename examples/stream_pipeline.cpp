// Demo of the async streaming engine: a chained lazy source (named scenarios
// + a generated E2 suite) pumped through AsyncScheduler into an incremental
// JSONL sink, then the future- and callback-based submission paths used
// directly — the API a network front-end would sit on.
#include <iostream>

#include "pipesched/stream/engine.hpp"
#include "pipesched/workload/generator.hpp"

int main() {
  using namespace pipesched;

  const service::SweepSpec sweep{12, 3};

  // 1) Source -> engine -> sink. Requests are materialized one at a time
  //    (the generator source builds instances on demand) and every outcome
  //    line is printed as soon as its turn completes — watch the output
  //    appear while later requests are still solving.
  stream::GeneratorSource::Spec spec;
  spec.kind = workload::ExperimentKind::kE2BalancedHetComm;
  spec.count = 6;
  spec.stages = 8;
  spec.processors = 5;
  spec.sweep = sweep;
  std::vector<std::unique_ptr<stream::Source>> parts;
  parts.push_back(std::make_unique<stream::ScenarioSource>(sweep, core::CommModel::kSequential));
  parts.push_back(std::make_unique<stream::GeneratorSource>(spec));
  stream::ChainSource source(std::move(parts));

  stream::StreamConfig config;
  config.workers = 2;
  config.queueCapacity = 4;
  stream::AsyncScheduler scheduler(config);
  stream::JsonlSink sink(std::cout);
  const stream::EngineStats stats = stream::runStream(source, sink, scheduler);

  std::cerr << "engine: " << stats.requests << " requests in " << stats.wallSeconds << " s ("
            << stats.requestsPerSecond << " req/s), backpressure waits "
            << stats.stream.queue.pushWaits << ", max in flight " << stats.stream.maxInFlight
            << "\n";

  // 2) The submission API itself. submit() returns a future immediately...
  workload::Rng rng(7);
  workload::InstancePair pair =
      workload::randomInstance(workload::ExperimentKind::kE3LargeComputations, 8, 5, rng);
  service::Request request{pair.pipeline, pair.platform, core::CommModel::kSequential, sweep,
                           "future-demo"};
  std::future<service::RequestOutcome> future = scheduler.submit(request);
  // ... and the callback form completes on a worker thread.
  scheduler.submit(request, [](const service::Request& r, const service::RequestOutcome& o) {
    std::cerr << "callback: " << r.name << " -> "
              << (o.ok ? std::to_string(o.result.front.size()) + "-point front" : o.error)
              << (o.deduped ? " (coalesced)" : o.fromCache ? " (cache)" : "") << "\n";
  });

  const service::RequestOutcome outcome = future.get();
  std::cerr << "future:   " << request.name << " -> "
            << (outcome.ok ? std::to_string(outcome.result.front.size()) + "-point front"
                           : outcome.error)
            << "\n";
  scheduler.drain();

  const stream::StreamStats s = scheduler.stats();
  std::cerr << "totals: " << s.completed << " completed = " << s.solved << " solved + "
            << s.cacheHits << " cache hits + " << s.coalesced << " coalesced + " << s.failed
            << " failed\n";
  return 0;
}
