// Pareto explorer: computes the *exact* period/latency trade-off front of a
// genomics variant-calling pipeline on a lab cluster (exhaustive search — the
// instance is small enough), then shows where each paper heuristic lands
// relative to the front.
//
// Build & run:  ./build/examples/pareto_explorer
#include <iostream>

#include "pipesched/exact/exhaustive.hpp"
#include "pipesched/exp/report.hpp"
#include "pipesched/heuristics/registry.hpp"
#include "pipesched/workload/scenarios.hpp"

int main() {
  using namespace pipesched;

  const workload::Scenario scenario = workload::genomicsScenario();
  // A 6-processor slice of the lab cluster keeps the exhaustive search small.
  const core::Platform platform({20, 18, 15, 12, 9, 6}, 10);
  const core::Evaluator eval(scenario.pipeline, platform);

  std::cout << "Application: " << scenario.description << "\nPlatform:    "
            << platform.describe() << "\n\n";

  const auto front = exact::exhaustiveParetoFront(eval);
  std::cout << "Exact Pareto front (" << front.size() << " points):\n";
  exp::TextTable frontTable;
  frontTable.setHeader({"period", "latency", "mapping"});
  for (const auto& point : front) {
    frontTable.addRow({exp::formatReal(point.period), exp::formatReal(point.latency),
                       point.mapping ? point.mapping->describe() : std::string("-")});
  }
  frontTable.print(std::cout);

  // Where do the heuristics land? Sweep the period axis of the front and let
  // each period-constrained heuristic aim at every front period.
  std::cout << "\nHeuristics vs the front (latency overshoot at each front period):\n";
  exp::TextTable gapTable;
  gapTable.setHeader({"period bound", "exact latency", "H1", "H2", "H3", "H4"});
  const auto heuristicSet = heuristics::makeAllHeuristics();
  for (const auto& point : front) {
    std::vector<std::string> row = {exp::formatReal(point.period),
                                    exp::formatReal(point.latency)};
    for (std::size_t h = 0; h < 4; ++h) {
      const auto r = heuristicSet[h]->run(eval, point.period * (1 + 1e-9));
      row.push_back(r.success
                        ? exp::formatReal(r.metrics.latency / point.latency, 3) + "x"
                        : std::string("fail"));
    }
    gapTable.addRow(std::move(row));
  }
  gapTable.print(std::cout);
  std::cout << "\n(1.000x = the heuristic found a latency-optimal mapping for that period\n"
               "bound; 'fail' = the greedy splitting cannot reach that period at all.)\n";
  return 0;
}
