// Walks the three named application scenarios (image processing, genomics,
// streaming ETL) through the full toolchain: heuristic mapping, local-search
// refinement, Pareto front, and a traced DES run rendered as an ASCII Gantt
// chart.
//
// Build & run:  ./build/examples/realistic_scenarios
#include <iostream>

#include "pipesched/exp/pareto_study.hpp"
#include "pipesched/exp/report.hpp"
#include "pipesched/heuristics/local_search.hpp"
#include "pipesched/heuristics/registry.hpp"
#include "pipesched/sim/trace.hpp"
#include "pipesched/workload/scenarios.hpp"

int main() {
  using namespace pipesched;

  const core::Platform platform = workload::labCluster();
  std::cout << "Platform: " << platform.describe() << "\n\n";

  for (const workload::Scenario& scenario : workload::allScenarios()) {
    std::cout << "==== " << scenario.name << " ====\n" << scenario.description << "\n";
    const core::Evaluator eval(scenario.pipeline, platform);

    // Stage table.
    exp::TextTable stages;
    stages.setHeader({"stage", "work", "output size"});
    for (std::size_t k = 0; k < scenario.pipeline.stageCount(); ++k) {
      stages.addRow({scenario.stageNames[k], exp::formatReal(scenario.pipeline.work(k), 1),
                     exp::formatReal(scenario.pipeline.outputSize(k), 1)});
    }
    stages.print(std::cout);

    // Throughput-oriented mapping: H1 run to its best period, then polished.
    const auto h1 = heuristics::makeHeuristic(heuristics::HeuristicId::kH1SpMonoP);
    const Real bestPeriod = h1->failureThreshold(eval);
    const heuristics::Result mapped = h1->run(eval, bestPeriod);
    const heuristics::LocalSearchResult polished = heuristics::localSearch(
        eval, mapped.mapping, heuristics::Objective::kMinPeriodForLatency, kInfinity);

    std::cout << "\nH1 mapping:      " << mapped.mapping.describe() << "\n"
              << "  period " << exp::formatReal(mapped.metrics.period, 2) << ", latency "
              << exp::formatReal(mapped.metrics.latency, 2) << "\n";
    std::cout << "after local search: " << polished.mapping.describe() << "\n"
              << "  period " << exp::formatReal(polished.metrics.period, 2) << ", latency "
              << exp::formatReal(polished.metrics.latency, 2) << "\n";

    // The whole latency/throughput trade-off for this application.
    exp::ParetoStudyConfig paretoConfig;
    paretoConfig.pointsPerHeuristic = 12;
    const exp::ParetoStudy front = exp::runParetoStudy(eval, paretoConfig);
    std::cout << "\nTrade-off front (" << front.merged.size() << " points):\n";
    exp::TextTable frontTable;
    frontTable.setHeader({"period", "latency", "intervals"});
    for (const core::ParetoPoint& p : front.merged) {
      frontTable.addRow({exp::formatReal(p.period, 2), exp::formatReal(p.latency, 2),
                         p.mapping ? std::to_string(p.mapping->intervalCount()) : "?"});
    }
    frontTable.print(std::cout);

    // Traced run of the polished mapping: the first few frames as a Gantt.
    sim::SimConfig simConfig;
    simConfig.datasetCount = 6;
    simConfig.recordTrace = true;
    const sim::SimReport report = sim::simulatePipeline(eval, polished.mapping, simConfig);
    sim::GanttOptions gantt;
    gantt.width = 90;
    gantt.maxDatasets = 6;
    std::cout << "\nPipelined execution of the first " << simConfig.datasetCount
              << " data sets:\n"
              << sim::renderGantt(polished.mapping, report, gantt) << "\n";
  }
  return 0;
}
